"""Robustness under degraded conditions (failure injection).

The IDS must stay sane when the bus is noisy, when ECUs die, or when the
capture is partial — conditions a deployed system will meet.
"""

import numpy as np
import pytest

from repro.attacks import SingleIDAttacker
from repro.can.bus import Bus, BusConfig
from repro.can.node import MessageSpec, PeriodicECU
from repro.core import IDSPipeline
from repro.io.trace import Trace
from repro.vehicle import VehicleSimulation
from repro.vehicle.traffic import simulate_drive


@pytest.fixture(scope="module")
def pipeline(golden_template, ids_config, catalog):
    return IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)


class TestNoisyBus:
    def test_detection_survives_bus_errors(self, pipeline, catalog, ids_config):
        """5 % transmission errors: retransmission preserves the message
        mix, so detection keeps working and clean traffic stays quiet."""
        config = BusConfig(error_rate=0.05, error_seed=3)
        sim = VehicleSimulation(
            catalog=catalog, scenario="city", seed=41, bus_config=config
        )
        sim.add_node(
            SingleIDAttacker(
                can_id=catalog.ids[60], frequency_hz=100.0, start_s=2.0,
                duration_s=8.0, seed=4,
            )
        )
        report = pipeline.analyze(sim.run(12.0))
        assert report.detection_rate > 0.9

    def test_clean_noisy_bus_quiet(self, pipeline, catalog):
        config = BusConfig(error_rate=0.05, error_seed=5)
        trace = simulate_drive(
            8.0, scenario="city", seed=42, catalog=catalog, bus_config=config
        )
        report = pipeline.analyze(trace)
        assert report.false_positive_rate <= 0.25  # mild degradation only


class TestDeadEcu:
    def test_silenced_ecu_shifts_entropy(self, pipeline, catalog, ids_config):
        """Losing a whole ECU changes the mix; the detector may flag it
        (that *is* an anomaly), but it must not crash and the windows
        must stay well-formed."""
        sim = VehicleSimulation(catalog=catalog, scenario="city", seed=43)
        sim.run(3.0)
        victim = sim.ecus[0]
        victim.disable("failure injection")
        sim.run(6.0)
        report = pipeline.analyze(sim.trace)
        assert all(w.n_messages > 0 for w in report.windows)


class TestPartialCaptures:
    def test_tiny_trace_yields_unjudged_windows(self, pipeline, catalog):
        trace = simulate_drive(0.05, scenario="city", seed=44, catalog=catalog)
        report = pipeline.analyze(trace)
        assert all(not w.judged for w in report.windows)
        assert report.detection_rate == 0.0

    def test_trace_with_gap(self, pipeline, catalog):
        """A capture glitch (silent gap) must not break windowing."""
        first = simulate_drive(3.0, scenario="city", seed=45, catalog=catalog)
        second = simulate_drive(3.0, scenario="city", seed=46, catalog=catalog)
        glued = Trace.merge(first, second.shifted(10_000_000))
        report = pipeline.analyze(glued)
        assert sum(w.n_messages for w in report.windows) == len(glued)

    def test_mid_attack_capture_start(self, pipeline, catalog):
        """Capture starting inside the attack still detects it."""
        sim = VehicleSimulation(catalog=catalog, scenario="city", seed=47)
        sim.add_node(
            SingleIDAttacker(
                can_id=catalog.ids[60], frequency_hz=100.0, start_s=0.0,
                duration_s=10.0, seed=6,
            )
        )
        trace = sim.run(10.0)
        # Drop the first half of the capture.
        partial = trace.between(5_000_000, 10_000_000)
        report = pipeline.analyze(partial)
        assert report.detection_rate > 0.9


class TestSaturatedBus:
    def test_overload_keeps_simulator_sane(self):
        """A bus driven past capacity must not deadlock or reorder."""
        bus = Bus()
        for index in range(6):
            bus.attach(
                PeriodicECU(
                    f"e{index}",
                    [MessageSpec(0x100 + index, period_us=1_000)],
                    seed=index,
                )
            )
        trace = bus.run(200_000)
        stamps = trace.timestamps_us()
        assert np.all(np.diff(stamps) > 0)
        assert bus.stats.busload(bus.now_us) > 0.95
        # Highest-priority node starves the rest under overload.
        assert bus.stats.wins_by_node["e0"] >= bus.stats.wins_by_node.get("e5", 0)

#!/usr/bin/env python
"""Quickstart: train the IDS on clean driving, catch an injection.

Walks the paper's whole pipeline in five steps:

1. build the synthetic vehicle (223 identifiers, like the 2016 Ford
   Fusion the paper measured);
2. record clean windows over diverse driving scenarios and build the
   golden template (the paper's 35 measurements);
3. drive again with a single-ID injection attack running;
4. detect the attack from per-bit entropy deviations;
5. infer which identifier was injected via rank selection.

Run:  python examples/quickstart.py
"""

from repro.attacks import SingleIDAttacker
from repro.core import IDSConfig, IDSPipeline, build_template
from repro.vehicle import VehicleSimulation, ford_fusion_catalog
from repro.vehicle.traffic import record_template_windows


def main() -> None:
    # -- 1. the vehicle -------------------------------------------------
    catalog = ford_fusion_catalog(seed=0)
    print(
        f"vehicle: {len(catalog)} identifiers "
        f"({catalog.coverage():.2%} of the 11-bit space), "
        f"~{catalog.nominal_rate_hz():.0f} msg/s nominal"
    )

    # -- 2. golden template ---------------------------------------------
    config = IDSConfig()  # window 2 s, alpha 3, rank 10
    windows = record_template_windows(
        n_windows=config.template_windows,
        window_s=config.window_us / 1e6,
        seed=7,
        catalog=catalog,
    )
    template = build_template(windows, config)
    print(
        f"template: {template.n_windows} windows, per-bit entropy range "
        f"max {template.entropy_range.max():.4f} (normal driving is steady)"
    )

    # -- 3. attack drive --------------------------------------------------
    attack_id = catalog.ids[70]
    sim = VehicleSimulation(catalog=catalog, scenario="city", seed=11)
    attacker = SingleIDAttacker(
        can_id=attack_id, frequency_hz=50.0, start_s=2.0, duration_s=8.0, seed=1
    )
    sim.add_node(attacker)
    trace = sim.run(12.0)
    print(
        f"capture: {len(trace)} frames over {trace.duration_us / 1e6:.1f}s, "
        f"{trace.attack_count} injected (Ir={attacker.injection_rate:.2f})"
    )

    # -- 4 & 5. detect + infer -------------------------------------------
    pipeline = IDSPipeline(template, config, id_pool=catalog.ids)
    report = pipeline.analyze(trace, infer_k=1)
    print()
    print(report.summary())
    print()
    hit = report.inference_hit_rate([attack_id])
    print(f"injected identifier was 0x{attack_id:03X}; "
          f"inference {'HIT' if hit == 1.0 else 'missed'} (rank-10 candidates)")


if __name__ == "__main__":
    main()

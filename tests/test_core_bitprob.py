"""Streaming per-bit counters."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitprob import BitCounter
from repro.exceptions import DetectorError

ids_11 = st.lists(st.integers(min_value=0, max_value=0x7FF), max_size=200)


class TestUpdates:
    def test_single_update(self):
        counter = BitCounter(3)
        counter.update(0b101)
        assert counter.counts().tolist() == [1, 0, 1]
        assert counter.total == 1

    def test_msb_first_indexing(self):
        counter = BitCounter(11)
        counter.update(0x400)  # only the MSB set
        assert counter.counts()[0] == 1
        assert counter.counts()[1:].sum() == 0

    def test_update_many_matches_loop(self):
        ids = [0x123, 0x456, 0x0F0, 0x7FF]
        a = BitCounter(11)
        for i in ids:
            a.update(i)
        b = BitCounter(11)
        b.update_many(ids)
        assert a == b

    def test_update_many_accepts_ndarray(self):
        counter = BitCounter(11)
        counter.update_many(np.array([1, 2, 3]))
        assert counter.total == 3

    def test_update_many_empty(self):
        counter = BitCounter(11)
        counter.update_many([])
        assert counter.is_empty()

    def test_rejects_oversized_id(self):
        counter = BitCounter(11)
        with pytest.raises(DetectorError):
            counter.update(0x800)
        with pytest.raises(DetectorError):
            counter.update_many([0x100, 0x800])

    def test_rejects_negative(self):
        with pytest.raises(DetectorError):
            BitCounter(11).update(-1)

    @given(ids_11)
    def test_streaming_equals_batch(self, ids):
        streaming = BitCounter(11)
        for can_id in ids:
            streaming.update(can_id)
        assert streaming == BitCounter.from_ids(ids, 11)


class TestProbabilities:
    def test_empty_probabilities_are_zero(self):
        assert BitCounter(4).probabilities().tolist() == [0.0] * 4

    def test_all_ones(self):
        counter = BitCounter.from_ids([0x7FF, 0x7FF], 11)
        assert counter.probabilities().tolist() == [1.0] * 11

    @given(ids_11)
    def test_probabilities_bounded(self, ids):
        p = BitCounter.from_ids(ids, 11).probabilities()
        assert np.all(p >= 0.0) and np.all(p <= 1.0)

    @given(ids_11)
    def test_probabilities_match_definition(self, ids):
        """p_i = (#messages with bit i set) / total — the paper's
        Definition in Section IV.A."""
        if not ids:
            return
        p = BitCounter.from_ids(ids, 11).probabilities()
        for bit in range(11):
            expected = sum((i >> (10 - bit)) & 1 for i in ids) / len(ids)
            assert p[bit] == pytest.approx(expected)


class TestArithmetic:
    @given(ids_11, ids_11)
    def test_merge_is_concatenation(self, a_ids, b_ids):
        merged = BitCounter.from_ids(a_ids, 11).merge(BitCounter.from_ids(b_ids, 11))
        assert merged == BitCounter.from_ids(list(a_ids) + list(b_ids), 11)

    @given(ids_11, ids_11)
    def test_subtract_inverts_merge(self, a_ids, b_ids):
        a = BitCounter.from_ids(a_ids, 11)
        combined = a.copy().merge(BitCounter.from_ids(b_ids, 11))
        combined.subtract(BitCounter.from_ids(b_ids, 11))
        assert combined == a

    def test_subtract_rejects_non_subset(self):
        a = BitCounter.from_ids([0x001], 11)
        b = BitCounter.from_ids([0x400], 11)
        with pytest.raises(DetectorError):
            a.subtract(b)

    def test_incompatible_widths_rejected(self):
        with pytest.raises(DetectorError):
            BitCounter(11).merge(BitCounter(29))

    def test_merge_requires_bitcounter(self):
        with pytest.raises(DetectorError):
            BitCounter(11).merge("nope")  # type: ignore[arg-type]

    def test_copy_is_independent(self):
        a = BitCounter.from_ids([0x100], 11)
        b = a.copy()
        b.update(0x200)
        assert a.total == 1
        assert b.total == 2

    def test_reset(self):
        counter = BitCounter.from_ids([0x100], 11)
        counter.reset()
        assert counter.is_empty()

    def test_rejects_bad_width(self):
        with pytest.raises(DetectorError):
            BitCounter(0)

"""Fleet experiment: incremental watch-mode scanning, measured.

The fleet subsystem's pitch is twofold: (1) an incremental re-scan of a
mostly-unchanged fleet store costs a small fraction of a cold scan, and
(2) the reports it assembles are *bit-identical* to cold-scanning
everything.  This experiment builds a synthetic fleet store (N vehicles
x M captures, one attacked capture per vehicle), then measures three
passes of :meth:`IDSPipeline.analyze_fleet`:

* **cold** — fresh ledgers, every capture scanned;
* **warm** — nothing changed, every capture answered by the ledger;
* **incremental** — one new capture per vehicle, only those scanned.

Correctness is asserted, not assumed: the incremental pass's report
must equal (``to_dict`` exact equality, i.e. bit-for-bit on every
float) a cold re-scan of the final store.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Optional

from repro.attacks import SingleIDAttacker
from repro.core import IDSConfig, IDSPipeline
from repro.core.template import GoldenTemplate
from repro.fleet import FleetStore
from repro.vehicle import VehicleSimulation
from repro.vehicle.ids_catalog import VehicleCatalog, ford_fusion_catalog
from repro.vehicle.traffic import generate_drive_columns

#: Default sizing: small enough for CI smoke, big enough to measure.
DEFAULT_VEHICLES = 2
DEFAULT_CAPTURES = 3
DEFAULT_FRAMES = 60_000


@dataclass(frozen=True)
class FleetExperimentResult:
    """Timings and ledger statistics of the three passes."""

    n_vehicles: int
    captures_per_vehicle: int
    frames_per_capture: int
    total_frames: int
    cold_s: float
    warm_s: float
    incremental_s: float
    incremental_scanned: int
    incremental_cached: int
    parity_ok: bool
    drifting_vehicles: int
    alarmed_vehicles: int

    @property
    def cold_fps(self) -> float:
        """Cold-scan throughput in frames/second."""
        return self.total_frames / self.cold_s if self.cold_s else 0.0

    @property
    def warm_speedup(self) -> float:
        """Cold time over fully-cached time."""
        return self.cold_s / self.warm_s if self.warm_s else 0.0

    @property
    def incremental_speedup(self) -> float:
        """Cold time over one-new-capture-per-vehicle time."""
        return self.cold_s / self.incremental_s if self.incremental_s else 0.0

    def render(self) -> str:
        """The experiment's artifact table."""
        lines = [
            "Fleet incremental scanning: ledger-backed watch mode",
            f"store: {self.n_vehicles} vehicles x {self.captures_per_vehicle} "
            f"captures x {self.frames_per_capture} frames "
            f"({self.total_frames} total), plus one appended capture/vehicle",
            f"{'pass':>14} {'seconds':>10} {'speedup':>9} {'scanned':>8} {'cached':>8}",
            f"{'cold':>14} {self.cold_s:>10.3f} {'1.0x':>9} "
            f"{self.n_vehicles * self.captures_per_vehicle:>8} {0:>8}",
            f"{'warm':>14} {self.warm_s:>10.3f} {self.warm_speedup:>8.1f}x "
            f"{0:>8} {self.n_vehicles * self.captures_per_vehicle:>8}",
            f"{'incremental':>14} {self.incremental_s:>10.3f} "
            f"{self.incremental_speedup:>8.1f}x {self.incremental_scanned:>8} "
            f"{self.incremental_cached:>8}",
            f"cold throughput: {self.cold_fps:,.0f} frames/s",
            f"incremental report bit-identical to cold re-scan: "
            f"{'yes' if self.parity_ok else 'NO'}",
            f"fleet verdicts: {self.alarmed_vehicles} alarmed, "
            f"{self.drifting_vehicles} drifting vehicles",
        ]
        return "\n".join(lines)

    def bench_records(self) -> list:
        """Machine-readable twin of :meth:`render`."""
        from repro.experiments.bench import bench_record

        params = {
            "n_vehicles": self.n_vehicles,
            "captures_per_vehicle": self.captures_per_vehicle,
            "frames_per_capture": self.frames_per_capture,
        }
        section = "fleet"
        return [
            bench_record(section, "cold_fps", self.cold_fps, "frames/s", params),
            bench_record(
                section, "warm_speedup", self.warm_speedup, "x", params
            ),
            bench_record(
                section, "incremental_speedup", self.incremental_speedup,
                "x", params,
            ),
            bench_record(
                section, "parity_ok", 1.0 if self.parity_ok else 0.0,
                "bool", params,
            ),
        ]


def _attack_capture(catalog, seed: int, duration_s: float = 7.0):
    """A short attacked drive (record-path simulation, ground truth)."""
    sim = VehicleSimulation(catalog=catalog, scenario="city", seed=seed)
    sim.add_node(
        SingleIDAttacker(
            can_id=catalog.ids[60],
            frequency_hz=100.0,
            start_s=1.0,
            duration_s=duration_s - 2.0,
            seed=seed,
        )
    )
    return sim.run(duration_s)


def run(
    template: GoldenTemplate,
    config: Optional[IDSConfig] = None,
    n_vehicles: int = DEFAULT_VEHICLES,
    captures_per_vehicle: int = DEFAULT_CAPTURES,
    frames_per_capture: int = DEFAULT_FRAMES,
    workers: Optional[int] = 1,
    seed: int = 37,
    scenario: str = "city",
    catalog: Optional[VehicleCatalog] = None,
    store_dir: Optional[str] = None,
) -> FleetExperimentResult:
    """Build a synthetic fleet store and measure the three scan passes.

    Each vehicle gets ``captures_per_vehicle - 1`` large clean captures
    (columnar drive generator) plus one short attacked capture, and the
    given template is persisted per vehicle (exercising the store's
    template loading).  The store is written under ``store_dir`` (a
    temporary directory by default, cleaned up afterwards).
    """
    config = config or IDSConfig()
    catalog = catalog or ford_fusion_catalog(seed=0)
    cleanup = store_dir is None
    tmp = tempfile.mkdtemp(prefix="repro-fleet-") if cleanup else store_dir
    try:
        store = FleetStore(tmp)
        probe = generate_drive_columns(
            10.0, scenario=scenario, seed=seed, catalog=catalog
        )
        rate = max(probe.message_rate_hz(), 1.0)
        duration_s = frames_per_capture / rate * 1.02 + 1.0
        n_clean = max(1, captures_per_vehicle - 1)
        total_frames = 0
        for v in range(n_vehicles):
            vid = f"vehicle{v:02d}"
            for c in range(n_clean):
                capture = generate_drive_columns(
                    duration_s,
                    scenario=scenario,
                    seed=seed + 100 * v + c,
                    catalog=catalog,
                ).slice(0, frames_per_capture)
                store.add_capture(vid, f"clean{c:02d}.log", capture)
                total_frames += len(capture)
            attacked = _attack_capture(catalog, seed + v)
            store.add_capture(vid, "attack00.log", attacked)
            total_frames += len(attacked)
            store.save_template(vid, template, window_us=config.window_us)

        pipeline = IDSPipeline(template, config)

        start = time.perf_counter()
        pipeline.analyze_fleet(store, workers=workers)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = pipeline.analyze_fleet(store, workers=workers)
        warm_s = time.perf_counter() - start
        assert all(w.fully_cached for w in warm.watch.values())

        for v in range(n_vehicles):
            capture = generate_drive_columns(
                duration_s,
                scenario=scenario,
                seed=seed + 100 * v + 50,
                catalog=catalog,
            ).slice(0, frames_per_capture)
            store.add_capture(f"vehicle{v:02d}", f"clean{n_clean:02d}.log", capture)

        start = time.perf_counter()
        incremental = pipeline.analyze_fleet(store, workers=workers)
        incremental_s = time.perf_counter() - start

        # Bit-identical to a cold re-scan of the final store: wipe every
        # ledger and scan from scratch, then compare the full archive
        # reports — every window, alert and inference field — not just
        # the drift digests (which could mask a window-level regression
        # behind equal pooled rates).
        for vid in store.vehicles():
            store.ledger_path(vid).unlink()
        cold_again = pipeline.analyze_fleet(store, workers=workers)
        parity_ok = {
            vid: w.report.to_dict() for vid, w in incremental.watch.items()
        } == {vid: w.report.to_dict() for vid, w in cold_again.watch.items()}

        return FleetExperimentResult(
            n_vehicles=n_vehicles,
            captures_per_vehicle=n_clean + 1,
            frames_per_capture=frames_per_capture,
            total_frames=total_frames,
            cold_s=cold_s,
            warm_s=warm_s,
            incremental_s=incremental_s,
            incremental_scanned=sum(
                len(w.scanned) for w in incremental.watch.values()
            ),
            incremental_cached=sum(
                len(w.cached) for w in incremental.watch.values()
            ),
            parity_ok=parity_ok,
            drifting_vehicles=len(incremental.drifting_vehicles),
            alarmed_vehicles=len(incremental.alarmed_vehicles),
        )
    finally:
        if cleanup:
            shutil.rmtree(tmp, ignore_errors=True)

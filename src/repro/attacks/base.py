"""The attacker node base class.

An attacker attempts one injection every ``1/frequency_hz`` seconds
inside its active interval.  Each attempt either wins the first
arbitration round it participates in (a successful injection) or is
dropped — the paper's injection rate ``Ir`` is exactly
``wins / attempts`` under this drop-on-loss policy.  The policy is
configurable (``drop_on_loss=False`` gives a queueing attacker) because
DESIGN.md calls the policy out as an ablation target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from repro.can.constants import SECOND_US
from repro.can.frame import CANFrame
from repro.can.node import Node
from repro.exceptions import BusConfigError, NodeStateError


@dataclass
class AttackStats:
    """Ground-truth bookkeeping for one attacker."""

    attempts: int = 0
    wins: int = 0
    losses: int = 0
    filtered: int = 0

    @property
    def injection_rate(self) -> float:
        """The paper's ``Ir``: successful injections over attempts."""
        return self.wins / self.attempts if self.attempts else 0.0


class AttackerNode(Node):
    """Base class for every attack scenario.

    Subclasses implement :meth:`select_id` (and may override
    :meth:`build_payload`).

    Parameters
    ----------
    name:
        Node name on the bus (appears in trace ground truth).
    frequency_hz:
        Injection attempt rate; the paper sweeps 100/50/20/10 Hz.
    start_s / duration_s:
        Active interval of the attack.
    seed:
        Seeds the attacker's RNG (ID choices, payloads).
    drop_on_loss:
        Drop frames that lose their first arbitration round (paper
        semantics).  ``False`` turns the attacker into a queueing
        transmitter for the ablation study.
    """

    is_attacker = True

    def __init__(
        self,
        name: str,
        frequency_hz: float,
        start_s: float = 0.0,
        duration_s: float = float("inf"),
        seed: int = 0,
        drop_on_loss: bool = True,
    ) -> None:
        super().__init__(name)
        if frequency_hz <= 0:
            raise BusConfigError(f"attack frequency must be positive, got {frequency_hz}")
        if start_s < 0:
            raise BusConfigError(f"attack start must be >= 0, got {start_s}")
        if duration_s <= 0:
            raise BusConfigError(f"attack duration must be positive, got {duration_s}")
        self.frequency_hz = frequency_hz
        self.period_us = max(1, int(round(SECOND_US / frequency_hz)))
        self.start_us = int(start_s * SECOND_US)
        self.end_us = (
            None if duration_s == float("inf") else self.start_us + int(duration_s * SECOND_US)
        )
        self.drop_on_loss = drop_on_loss
        self.rng = np.random.default_rng(seed)
        self.stats = AttackStats()
        self.ids_used: Set[int] = set()
        self._next_attempt_us = self.start_us
        self._pending: Optional[CANFrame] = None
        self._payload_seq = 0

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    def select_id(self) -> int:
        """Choose the identifier for the next injection attempt."""
        raise NotImplementedError

    def build_payload(self) -> bytes:
        """Payload for the next injection (default: 8 random bytes)."""
        return bytes(self.rng.integers(0, 256, size=8, dtype=np.uint8))

    # ------------------------------------------------------------------
    # Node interface
    # ------------------------------------------------------------------
    def _attack_over(self) -> bool:
        return self.end_us is not None and self._next_attempt_us >= self.end_us

    def next_release(self) -> Optional[int]:
        if self._attack_over() and self._pending is None:
            return None
        return self._next_attempt_us

    def peek(self) -> CANFrame:
        if self._pending is None:
            if self._attack_over():
                raise NodeStateError(f"attacker {self.name} is past its window")
            can_id = self.select_id()
            self.ids_used.add(can_id)
            self._pending = CANFrame(can_id, self.build_payload())
            self._payload_seq += 1
        return self._pending

    def _advance_schedule(self, t_us: int) -> None:
        """Move to the next attempt slot strictly after ``t_us``."""
        self._pending = None
        while self._next_attempt_us <= t_us:
            self._next_attempt_us += self.period_us

    def on_win(self, t_us: int) -> None:
        super().on_win(t_us)
        self.stats.attempts += 1
        self.stats.wins += 1
        self._advance_schedule(t_us)

    def on_loss(self, t_us: int) -> None:
        super().on_loss(t_us)
        if self.drop_on_loss:
            self.stats.attempts += 1
            self.stats.losses += 1
            self._advance_schedule(t_us)
        # Otherwise keep the frame pending: it re-contends next round and
        # the eventual win is counted then (queueing attacker ablation).

    def on_filtered(self, t_us: int) -> None:
        super().on_filtered(t_us)
        self.stats.attempts += 1
        self.stats.filtered += 1
        self._advance_schedule(t_us)

    # ------------------------------------------------------------------
    @property
    def injection_rate(self) -> float:
        """Convenience accessor for ``stats.injection_rate``."""
        return self.stats.injection_rate

    def describe(self) -> str:
        """One-line human-readable description of the attack."""
        end = "inf" if self.end_us is None else f"{self.end_us / SECOND_US:.1f}s"
        return (
            f"{type(self).__name__}({self.name}) f={self.frequency_hz:g}Hz "
            f"window=[{self.start_us / SECOND_US:.1f}s,{end}] "
            f"Ir={self.injection_rate:.3f} ids={sorted(self.ids_used)}"
        )

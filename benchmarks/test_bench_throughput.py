"""Micro-benchmarks of the detection kernels (the Section V.E
"light-weight detection algorithm" claim, measured).

The paper argues the bit-slice method is cheap enough for embedded
deployment: 11 counters updated per message, an 11-term entropy sum per
window.  These benchmarks measure the reference implementation's
throughput for the streaming update path, the window judgement, the
whole-trace scan, and — for contrast — the Muter baseline's histogram
path on the same trace.
"""

import os

import numpy as np
import pytest

from conftest import append_artifact, append_bench, save_artifact
from repro.baselines import MuterEntropyIDS
from repro.core import BatchEntropyEngine, BitCounter, EntropyDetector, binary_entropy
from repro.core.entropy import shannon_entropy
from repro.experiments import ooc_smoke, throughput
from repro.vehicle.traffic import record_template_windows, simulate_drive

#: Capture size for the large-capture benchmark.  The default keeps the
#: suite quick; set REPRO_BENCH_FRAMES=10000000 to measure the full
#: ten-million-frame regime (the experiment module's own default).
BENCH_FRAMES = int(os.environ.get("REPRO_BENCH_FRAMES", "1000000"))


@pytest.fixture(scope="module")
def drive_trace(setup):
    return simulate_drive(10.0, scenario="city", seed=13, catalog=setup.catalog)


@pytest.fixture(scope="module")
def drive_columns(drive_trace):
    return drive_trace.to_columns()


@pytest.fixture(scope="module")
def drive_ids(drive_trace):
    return drive_trace.ids()


class TestCounterKernels:
    def test_bench_streaming_update(self, benchmark, drive_ids):
        """Per-message streaming update (the embedded hot path)."""
        ids = [int(i) for i in drive_ids[:2000]]

        def run():
            counter = BitCounter(11)
            for can_id in ids:
                counter.update(can_id)
            return counter

        counter = benchmark(run)
        assert counter.total == len(ids)

    def test_bench_vectorised_update(self, benchmark, drive_ids):
        """Batch update over a full 10 s capture."""
        def run():
            counter = BitCounter(11)
            counter.update_many(drive_ids)
            return counter

        counter = benchmark(run)
        assert counter.total == len(drive_ids)

    def test_bench_entropy_vector(self, benchmark, drive_ids):
        """The 11-term entropy evaluation the paper counts as the saving."""
        counter = BitCounter.from_ids(drive_ids)
        probabilities = counter.probabilities()
        result = benchmark(lambda: binary_entropy(probabilities))
        assert np.all(result <= 1.0)

    def test_bench_muter_histogram_entropy(self, benchmark, drive_trace):
        """The baseline's per-window work: a 223-bin histogram + entropy
        over hundreds of elements (the cost the paper contrasts)."""
        def run():
            histogram = drive_trace.id_histogram()
            return shannon_entropy(np.fromiter(histogram.values(), dtype=float))

        entropy = benchmark(run)
        assert entropy > 0.0


class TestDetectorThroughput:
    def test_bench_streaming_scan(self, benchmark, setup, drive_trace):
        """Full streaming detection over a 10 s capture."""
        def run():
            detector = EntropyDetector(setup.template, setup.config)
            return detector.scan(drive_trace)

        windows = benchmark(run)
        assert windows
        rate = len(drive_trace) / 1.0  # messages per scan
        benchmark.extra_info["messages_per_scan"] = rate

    def test_bench_batch_scan(self, benchmark, setup, drive_columns):
        """Vectorised batch detection over the same capture, columnar."""
        def run():
            return BatchEntropyEngine(setup.template, setup.config).scan(
                drive_columns
            )

        windows = benchmark(run)
        assert windows
        benchmark.extra_info["messages_per_scan"] = len(drive_columns) / 1.0

    def test_bench_muter_scan(self, benchmark, setup, drive_trace):
        clean = record_template_windows(6, 2.0, seed=3, catalog=setup.catalog)
        muter = MuterEntropyIDS(window_us=setup.config.window_us).fit(clean)
        verdicts = benchmark(lambda: muter.scan(drive_trace))
        assert verdicts

    def test_bench_muter_scan_columns(self, benchmark, setup, drive_columns):
        """The baseline's vectorised columnar path, for contrast."""
        clean = record_template_windows(6, 2.0, seed=3, catalog=setup.catalog)
        muter = MuterEntropyIDS(window_us=setup.config.window_us).fit(clean)
        verdicts = benchmark(lambda: muter.scan(drive_columns))
        assert verdicts

    def test_streaming_scan_is_realtime_capable(self, setup, drive_trace):
        """The reference implementation must process a 10 s capture far
        faster than real time (the paper targets sub-second reaction)."""
        import time

        detector = EntropyDetector(setup.template, setup.config)
        start = time.perf_counter()
        detector.scan(drive_trace)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0  # > 1x real time with huge margin

    def test_batch_scan_outpaces_streaming(self, setup, drive_trace, drive_columns):
        """The batch engine must deliver >= 10x the streaming path's
        messages/second on a 10 s city capture — while producing the
        identical window verdicts."""
        import time

        detector = EntropyDetector(setup.template, setup.config)
        engine = BatchEntropyEngine(setup.template, setup.config)
        # Warm both paths (template arrays, numpy caches), then take the
        # best of three to shield the ratio from scheduler noise.
        detector.scan(drive_trace)
        engine.scan(drive_columns)

        def best_of(fn, repeats=3):
            elapsed = []
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                elapsed.append(time.perf_counter() - start)
            return min(elapsed)

        streaming_s = best_of(lambda: EntropyDetector(
            setup.template, setup.config).scan(drive_trace))
        batch_s = best_of(lambda: BatchEntropyEngine(
            setup.template, setup.config).scan(drive_columns))
        streaming_mps = len(drive_trace) / streaming_s
        batch_mps = len(drive_columns) / batch_s
        # Speedup ratios are only stable with a core to spare; a
        # single-core host records the honest number without asserting.
        if (os.cpu_count() or 1) > 1:
            assert batch_mps >= 10 * streaming_mps, (
                f"batch {batch_mps:,.0f} msg/s vs streaming {streaming_mps:,.0f} msg/s"
            )

        stream_windows = EntropyDetector(setup.template, setup.config).scan(drive_trace)
        batch_windows = BatchEntropyEngine(setup.template, setup.config).scan(drive_columns)
        assert len(stream_windows) == len(batch_windows)
        for s, b in zip(stream_windows, batch_windows):
            assert s.judged == b.judged and s.alarm == b.alarm
            assert np.array_equal(s.deviations, b.deviations)


class TestLargeCaptureThroughput:
    def test_bench_large_capture_both_paths(self, setup):
        """Both detection paths measured on a multi-million-frame
        synthetic capture (REPRO_BENCH_FRAMES frames; default 1M, the
        paper-scale regime is 10M)."""
        result = throughput.run(
            setup.template,
            setup.config,
            n_frames=BENCH_FRAMES,
            catalog=setup.catalog,
        )
        append_artifact("throughput", result.render())
        append_bench("throughput", result.bench_records())
        assert result.n_frames == BENCH_FRAMES
        if (os.cpu_count() or 1) > 1:
            assert result.speedup >= 10.0, result.render()


class TestFusedKernelThroughput:
    def test_bench_fused_kernel_vs_legacy(self, setup):
        """The fused single-pass kernel against the per-bit reduceat
        path it replaced, same capture, best-of-N in one process.  The
        kernel's acceptance bar is an integer-multiple win with
        bit-identical verdicts."""
        result = throughput.run_kernel(
            setup.template,
            setup.config,
            n_frames=BENCH_FRAMES,
            catalog=setup.catalog,
        )
        append_artifact("throughput", result.render())
        append_bench("throughput", result.bench_records())
        # Speedup without parity is meaningless; assert parity first
        # (unconditionally — correctness does not depend on cores).
        assert result.parity_ok, result.render()
        if (os.cpu_count() or 1) > 1:
            assert result.kernel_speedup >= 2.0, result.render()
            # The chunked out-of-core driver must not give the win back.
            assert result.stream_speedup >= 2.0, result.render()


class TestOutOfCoreCeiling:
    def test_bench_rss_bounded_out_of_core_scan(self, setup):
        """A capture several times larger than an enforced RLIMIT_DATA
        ceiling scans out-of-core to a report bit-identical to the
        in-RAM scan (and the eager load correctly dies trying)."""
        result = ooc_smoke.run(setup.template, setup.config)
        append_artifact("throughput", result.render())
        append_bench("throughput", result.bench_records())
        assert result.identical, result.render()
        assert result.eager_failed, result.render()
        assert result.size_over_limit >= 4.0, result.render()


#: Ingest benchmark sizing (frames written/parsed per flavour; scale up
#: with the env knob for full-capture measurements).
INGEST_FRAMES = int(os.environ.get("REPRO_BENCH_INGEST_FRAMES", "200000"))


class TestIngestThroughput:
    def test_bench_chunked_ingest_block_vs_perline(self, setup):
        """The block-vectorised chunked readers against the per-line
        chunked readers they replaced — candump and CSV, plain and
        gzipped — at the same chunk size.  Parity with the whole-file
        readers is asserted unconditionally; the speedup bar only with
        a core to spare."""
        result = throughput.run_ingest(
            n_frames=INGEST_FRAMES, catalog=setup.catalog
        )
        append_artifact("throughput", result.render())
        append_bench("ingest", result.bench_records())
        assert result.parity_ok, result.render()
        if (os.cpu_count() or 1) > 1:
            assert result.min_speedup >= 1.5, result.render()


class TestCodecThroughput:
    def test_bench_codec_container_v2_vs_v1(self, setup):
        """The v2 codec pipeline against the v1 raw-zlib container on
        the same payload-bearing capture: disk footprint, cold
        scan_stream rate, and the warm decoded-block-cache rescan.
        Parity (v1 == v2 == warm == in-RAM) is unconditional, and so
        are the codec bars: the filters are single-core wins, so they
        must hold even on this 1-CPU runner (a small tolerance guards
        the rate ratios against timer noise)."""
        result = throughput.run_codec(
            n_frames=INGEST_FRAMES, catalog=setup.catalog
        )
        append_artifact("throughput", result.render())
        append_bench("ingest", result.bench_records())
        assert result.parity_ok, result.render()
        # v2 strictly smaller, by the target margin (deterministic).
        assert result.v2_bytes < result.v1_bytes, result.render()
        assert result.size_ratio >= 1.5, result.render()
        # At least as fast as v1 cold (5% timer-noise guard) and
        # measurably faster warm.
        assert result.scan_speedup >= 0.95, result.render()
        assert result.warm_speedup >= 1.05, result.render()
        assert result.cache_hits > 0, result.render()


#: Archive benchmark sizing (kept modest by default; scale up with the
#: env knobs for fleet-regime measurements).
ARCHIVE_CAPTURES = int(os.environ.get("REPRO_BENCH_ARCHIVE_CAPTURES", "4"))
ARCHIVE_FRAMES = int(os.environ.get("REPRO_BENCH_ARCHIVE_FRAMES", "120000"))


class TestArchiveThroughput:
    def test_bench_archive_loading_and_sharded_scan(self, setup):
        """Archive-scale end-to-end: columnar-native loading vs the
        record round-trip, and sharded scan scaling vs worker count.
        The section lands in results/throughput.txt next to the
        single-capture numbers."""
        result = throughput.run_archive(
            setup.template,
            setup.config,
            n_captures=ARCHIVE_CAPTURES,
            frames_per_capture=ARCHIVE_FRAMES,
            worker_counts=(1, 2, 4),
            catalog=setup.catalog,
        )
        append_artifact("throughput", result.render())
        append_bench("throughput", result.bench_records())
        # Columnar-native loading must beat loading through records by
        # a wide margin on both formats (speedup ratios only asserted
        # with a core to spare).
        if (os.cpu_count() or 1) > 1:
            assert result.candump_load_speedup >= 5.0, result.render()
            assert result.csv_load_speedup >= 5.0, result.render()
        # Sharding can only help when the host actually has cores; CI
        # and laptops do, the single-core container records the honest
        # number without asserting on it.
        if (os.cpu_count() or 1) >= 4:
            assert result.scan_speedup(4) >= 2.0, result.render()

"""Online and rolling statistics.

:class:`OnlineStats` implements Welford's algorithm: numerically stable
streaming mean/variance in O(1) memory — the right tool for an embedded
monitor tracking, say, per-bit deviations over days of driving.
:class:`RollingWindowStats` keeps the same statistics over the last N
samples only.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional


class OnlineStats:
    """Streaming count/mean/variance/min/max (Welford)."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, value: float) -> None:
        """Account one sample."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def count(self) -> int:
        """Samples accounted."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 below two samples)."""
        return self._m2 / (self._count - 1) if self._count > 1 else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def min(self) -> Optional[float]:
        """Smallest sample (None when empty)."""
        return self._min if self._count else None

    @property
    def max(self) -> Optional[float]:
        """Largest sample (None when empty)."""
        return self._max if self._count else None

    @property
    def range(self) -> float:
        """max - min (0 when empty) — the paper's threshold basis."""
        if not self._count:
            return 0.0
        return self._max - self._min

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine with another accumulator (parallel Welford merge)."""
        if other._count == 0:
            return self
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return self
        total = self._count + other._count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._count * other._count / total
        self._mean += delta * other._count / total
        self._count = total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self


class RollingWindowStats:
    """Mean/std/min/max over the last ``size`` samples."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size
        self._values: Deque[float] = deque(maxlen=size)

    def push(self, value: float) -> None:
        """Account one sample, expiring the oldest when full."""
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def full(self) -> bool:
        """True once ``size`` samples are held."""
        return len(self._values) == self.size

    @property
    def mean(self) -> float:
        """Mean of the held samples (0 when empty).

        Computed from the held window on each access (like min/max) —
        an incrementally maintained running sum accumulates rounding
        drift over long streams.
        """
        return math.fsum(self._values) / len(self._values) if self._values else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the held samples.

        Two exact passes over the held window (the values are stored
        anyway for expiry) — the running E[x^2] - E[x]^2 form cancels
        catastrophically when the window mean is large relative to its
        spread.
        """
        n = len(self._values)
        if n < 2:
            return 0.0
        mean = math.fsum(self._values) / n
        return math.fsum((v - mean) ** 2 for v in self._values) / n

    @property
    def std(self) -> float:
        """Population standard deviation of the held samples."""
        return math.sqrt(self.variance)

    @property
    def min(self) -> Optional[float]:
        """Smallest held sample (None when empty; O(size))."""
        return min(self._values) if self._values else None

    @property
    def max(self) -> Optional[float]:
        """Largest held sample (None when empty; O(size))."""
        return max(self._values) if self._values else None

"""Multiprocess sharded scanning of capture archives.

One capture archive, many CPU cores: :class:`ShardedScanner` fans the
vectorised :class:`~repro.core.engine.BatchEntropyEngine` (or a fitted
baseline's ``scan``) across a ``multiprocessing`` pool, one task per
capture file.  Workers load their capture themselves through the
columnar readers — only a *path* crosses the process boundary on the
way in, and only the window verdicts come back — so sharding adds no
serialisation of bulk frame data.

Guarantees:

* **Deterministic ordering** — results come back in the archive's scan
  order (sorted relative paths) regardless of which worker finished
  first.
* **Bit-identical to serial** — each worker runs exactly the code the
  serial scan runs on exactly the bytes the serial scan reads; the
  shard test suite asserts equality of every window field between
  ``workers=1`` and ``workers=4``.

``workers=1`` (or a single-capture archive) runs inline without a pool,
which is also the fallback wherever ``multiprocessing`` is unavailable
or undesirable (tests, notebooks, already-forked servers).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.baselines.base import BaselineIDS, BaselineVerdict
from repro.core.alerts import AlertSink
from repro.core.config import IDSConfig
from repro.core.detector import WindowResult
from repro.core.engine import BatchEntropyEngine
from repro.core.template import GoldenTemplate
from repro.exceptions import DetectorError
from repro.io.archive import CaptureArchive, load_capture_columns

__all__ = ["CaptureScan", "ShardedScanner"]

#: Worker-process state installed by the pool initializer.  With the
#: ``fork`` start method this is inherited for free; with ``spawn`` the
#: initializer arguments are pickled once per worker, not per task.
_WORKER: dict = {}


def _init_entropy_worker(template: GoldenTemplate, config: IDSConfig) -> None:
    _WORKER["engine"] = BatchEntropyEngine(template, config, AlertSink())


def _scan_entropy(path: str) -> List[WindowResult]:
    return _WORKER["engine"].scan(load_capture_columns(path))


def _init_baseline_worker(baseline: BaselineIDS) -> None:
    _WORKER["baseline"] = baseline


def _scan_baseline(path: str) -> List[BaselineVerdict]:
    return _WORKER["baseline"].scan(load_capture_columns(path))


def _pool_context():
    """Prefer ``fork`` (cheap, inherits the template) where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def default_workers() -> int:
    """Worker count when none is given: one per core, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


@dataclass(frozen=True)
class CaptureScan:
    """One capture's scan outcome within an archive scan."""

    path: Path
    windows: List[WindowResult]

    @property
    def alarmed(self) -> bool:
        """True when any window of this capture raised an alarm."""
        return any(w.alarm for w in self.windows)


class ShardedScanner:
    """Fan a batch scan across processes, one capture per task.

    Parameters
    ----------
    template, config:
        Exactly the arguments :class:`BatchEntropyEngine` takes; the
        scanner builds one engine per worker process.
    workers:
        Pool size.  ``1`` scans inline (no pool).  Defaults to
        :func:`default_workers`.
    """

    def __init__(
        self,
        template: GoldenTemplate,
        config: Optional[IDSConfig] = None,
        workers: Optional[int] = None,
    ) -> None:
        self.template = template
        self.config = config or IDSConfig()
        if template.n_bits != self.config.n_bits:
            raise DetectorError(
                f"template monitors {template.n_bits} bits, config expects "
                f"{self.config.n_bits}"
            )
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise DetectorError(f"workers must be >= 1, got {workers}")

    # ------------------------------------------------------------------
    def _resolve_paths(
        self, archive: Union[CaptureArchive, Sequence[Union[str, Path]]]
    ) -> List[Path]:
        if isinstance(archive, CaptureArchive):
            return list(archive.paths)
        return [Path(p) for p in archive]

    def _fan_out(self, paths: List[Path], initializer, initargs, task):
        n_workers = min(self.workers, len(paths))
        if n_workers <= 1:
            initializer(*initargs)
            try:
                return [task(str(p)) for p in paths]
            finally:
                _WORKER.clear()
        ctx = _pool_context()
        with ctx.Pool(n_workers, initializer=initializer, initargs=initargs) as pool:
            # map() preserves task order, so results are deterministic
            # no matter which worker finishes first.
            return pool.map(task, [str(p) for p in paths], chunksize=1)

    # ------------------------------------------------------------------
    def scan_archive(
        self, archive: Union[CaptureArchive, Sequence[Union[str, Path]]]
    ) -> List[CaptureScan]:
        """Scan every capture of an archive (or explicit path list).

        Returns one :class:`CaptureScan` per capture, in scan order,
        with windows bit-identical to ``BatchEntropyEngine.scan`` run
        serially over the same files.
        """
        paths = self._resolve_paths(archive)
        if not paths:
            return []
        results = self._fan_out(
            paths, _init_entropy_worker, (self.template, self.config), _scan_entropy
        )
        return [CaptureScan(p, w) for p, w in zip(paths, results)]

    def scan_archive_baseline(
        self,
        baseline: BaselineIDS,
        archive: Union[CaptureArchive, Sequence[Union[str, Path]]],
    ) -> List[List[BaselineVerdict]]:
        """Fan a fitted baseline's ``scan`` across the archive.

        The baseline (with its fitted state) is shipped to each worker
        once; per-capture verdict lists come back in scan order.
        """
        if not baseline._fitted:
            raise DetectorError(f"{baseline.name}: scan before fit")
        paths = self._resolve_paths(archive)
        if not paths:
            return []
        return self._fan_out(
            paths, _init_baseline_worker, (baseline,), _scan_baseline
        )

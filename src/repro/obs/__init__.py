"""``repro.obs`` — zero-dependency telemetry for the whole pipeline.

One process-global :class:`Registry` is either *on* or *off*:

* off (the default): :func:`active` returns ``None``;
  instrumented call sites pay exactly one attribute load + ``is None``
  branch, and :func:`span`/:func:`emit` are no-ops that allocate
  nothing beyond the caller's kwargs.
* on (:func:`enable`): every layer — engine kernel loop, ``.npb``/
  ``.npz`` readers, fabric task execution, fleet daemon cycles, CLI
  commands — records spans/counters into the registry and streams
  versioned events to the configured sinks.

The hot paths deliberately spell the guard out themselves::

    reg = obs.active()
    if reg is None:
        ...fast path, untouched...
    else:
        with reg.span("engine.kernel", frames=n):
            ...same code...

so the disabled path constructs no kwargs dict and no context manager.
The module-level :func:`span`/:func:`emit` helpers are for warm paths
(CLI, daemon) where a dict per call is noise.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from repro.obs.registry import (
    BUCKET_BOUNDS,
    OBS_VERSION,
    Counter,
    Gauge,
    Histogram,
    Registry,
)
from repro.obs.sinks import JsonlSink, MemorySink, write_bench_snapshot

__all__ = [
    "OBS_VERSION",
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "MemorySink",
    "JsonlSink",
    "write_bench_snapshot",
    "active",
    "enabled",
    "enable",
    "disable",
    "capture",
    "span",
    "emit",
]

_active: Optional[Registry] = None


def active() -> Optional[Registry]:
    """The enabled registry, or ``None`` — *the* hot-path guard."""
    return _active


def enabled() -> bool:
    return _active is not None


def enable(registry: Optional[Registry] = None, sinks: Sequence = ()) -> Registry:
    """Turn telemetry on process-wide; returns the active registry."""
    global _active
    _active = registry if registry is not None else Registry(sinks=sinks)
    return _active


def disable() -> Optional[Registry]:
    """Turn telemetry off; returns the registry that was active."""
    global _active
    previous = _active
    _active = None
    return previous


@contextmanager
def capture(sinks: Sequence = ()) -> Iterator[Registry]:
    """Enable a fresh registry for the duration of a ``with`` block.

    The test-suite idiom: guarantees ``disable()`` on the way out even
    if the instrumented code raises.
    """
    registry = enable(sinks=sinks)
    try:
        yield registry
    finally:
        disable()


class _NoopSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


def span(name: str, **fields):
    """Module-level span: times the block when enabled, no-op when off."""
    registry = _active
    if registry is None:
        return _NOOP_SPAN
    return registry.span(name, **fields)


def emit(kind: str, **fields) -> Optional[dict]:
    """Module-level event emit: dropped silently when telemetry is off."""
    registry = _active
    if registry is None:
        return None
    return registry.emit(kind, **fields)

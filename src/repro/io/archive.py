"""Capture archives: directories of recorded CAN log files.

The paper evaluates on single captures; the production target (see
ROADMAP.md) is fleet-sized *archives* — a directory of candump/CSV
capture files that may collectively be far larger than RAM.
:class:`CaptureArchive` is the io-layer view of such a directory:

* **enumeration** is deterministic (sorted relative paths), so sharded
  scans and serial scans agree on capture order;
* **loading** is lazy and columnar-native — nothing is read until a
  capture is requested, and each capture parses straight into a
  :class:`~repro.io.columnar.ColumnTrace` via the vectorised readers;
* **chunked streaming** (:meth:`iter_chunks`) yields bounded-size
  column chunks so archives larger than RAM stream through without
  materialising any single capture.

The archive does not interpret captures (no detection here); the
scanning layers (:mod:`repro.core.shard`,
:meth:`repro.core.pipeline.IDSPipeline.analyze_archive`) build on it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Optional, Sequence, Tuple, Union

from repro.exceptions import TraceFormatError
from repro.io.blocks import BlockReader, write_blocks
from repro.io.columnar import ColumnTrace
from repro.io.csvlog import iter_csv_columns, read_csv_columns, write_csv_columns
from repro.io.log import (
    iter_candump_columns,
    read_candump_columns,
    write_candump_columns,
)

__all__ = [
    "CaptureArchive",
    "capture_suffix",
    "iter_capture_chunks",
    "load_capture_columns",
    "open_capture_stream",
]

#: File patterns an archive enumerates by default (gzipped twins of
#: both text formats included; the readers decompress transparently,
#: columnar ``.npz`` exports load without parsing at all, and
#: block-compressed ``.npb`` containers stream block by block).
DEFAULT_PATTERNS = (
    "*.log", "*.csv", "*.npz", "*.npb", "*.log.gz", "*.csv.gz",
)


def capture_suffix(path: Union[str, Path]) -> str:
    """The format-determining suffix, looking through ``.gz``.

    ``drive.log`` and ``drive.log.gz`` are both ``".log"``; compression
    is an IO-layer property, not a format.
    """
    path = Path(path)
    if path.suffix.lower() == ".gz":
        path = path.with_suffix("")
    return path.suffix.lower()


def load_capture_columns(
    path: Union[str, Path], *, mmap: bool = False
) -> ColumnTrace:
    """Load one capture file into columns, choosing the reader by suffix.

    ``.csv`` (or ``.csv.gz``) files take the CSV reader, ``.npz`` the
    columnar loader (with ``mmap=True`` the columns come back as lazy
    read-only memory maps — see :meth:`ColumnTrace.load_npz`; the flag
    has no effect on text formats, which must be parsed anyway).
    Anything else is treated as a candump text log.  This is the
    module-level loader the shard workers call, so it must stay
    importable (picklable) by name.
    """
    path = Path(path)
    suffix = capture_suffix(path)
    if suffix == ".csv":
        return read_csv_columns(path)
    if suffix == ".npz":
        return ColumnTrace.load_npz(path, mmap=mmap)
    if suffix == ".npb":
        with BlockReader(path) as reader:
            return reader.to_columns()
    return read_candump_columns(path)


def open_capture_stream(path: Union[str, Path]):
    """Open a capture as a *streaming* window-chunk source.

    The out-of-core scan paths (``scan_stream``, ``--out-of-core``)
    need a source whose memory footprint is bounded:

    * ``.npz`` — the memory-mapped :class:`ColumnTrace` (lazy pages);
    * ``.npb`` — a :class:`~repro.io.blocks.BlockReader` (one inflated
      block at a time);
    * text formats — parsed eagerly (chunk-parsing text would re-read
      the file once per scan; converting once with ``repro-ids
      convert`` is the bounded-memory route, which the CLI hints at).

    The returned object may expose ``close()``; callers should call it
    (or ignore it — :class:`ColumnTrace` has none) when the scan ends.
    """
    path = Path(path)
    if capture_suffix(path) == ".npb":
        return BlockReader(path)
    return load_capture_columns(path, mmap=True)


def _iter_npz_chunks(path: Path, chunk_frames: int) -> Iterator[ColumnTrace]:
    # Chunks of an npz capture are zero-copy slices over the memory
    # map, so only ~chunk_frames of pages are resident at a time.
    trace = ColumnTrace.load_npz(path, mmap=True)
    for lo in range(0, len(trace), chunk_frames):
        yield trace.slice(lo, lo + chunk_frames)


def _iter_blocks_chunks(path: Path, chunk_frames: int) -> Iterator[ColumnTrace]:
    # One inflated block resident at a time, re-sliced to the caller's
    # chunk size.
    with BlockReader(path) as reader:
        for block in reader.iter_blocks():
            for lo in range(0, len(block), chunk_frames):
                yield block.slice(lo, lo + chunk_frames)


def iter_capture_chunks(
    path: Path, chunk_frames: int
) -> Iterator[ColumnTrace]:
    suffix = capture_suffix(path)
    if suffix == ".csv":
        return iter_csv_columns(path, chunk_frames)
    if suffix == ".npz":
        return _iter_npz_chunks(path, chunk_frames)
    if suffix == ".npb":
        return _iter_blocks_chunks(path, chunk_frames)
    return iter_candump_columns(path, chunk_frames)


class CaptureArchive:
    """A directory of capture files, enumerated deterministically.

    Parameters
    ----------
    directory:
        The archive root.  Must exist.
    patterns:
        Glob patterns selecting capture files (default ``*.log``,
        ``*.csv`` and their gzipped ``.gz`` twins).
    recursive:
        Also search subdirectories (``**/pattern``).

    The file list is snapshotted at construction (sorted by relative
    path) so concurrent writers cannot reorder an ongoing scan.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        patterns: Sequence[str] = DEFAULT_PATTERNS,
        recursive: bool = False,
    ) -> None:
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise TraceFormatError(f"archive directory {directory!r} does not exist")
        self.patterns = tuple(patterns)
        self.recursive = recursive
        found = set()
        for pattern in self.patterns:
            globber = self.directory.rglob if recursive else self.directory.glob
            found.update(p for p in globber(pattern) if p.is_file())
        # Compression is an IO property, not a different capture: when a
        # gzipped file sits next to its uncompressed twin (gzip -k), the
        # pair is ONE capture — enumerate only the plain file so scans
        # and pooled metrics never double-count a drive.
        found -= {p for p in found
                  if p.suffix.lower() == ".gz" and p.with_suffix("") in found}
        self._paths: Tuple[Path, ...] = tuple(
            sorted(found, key=lambda p: p.relative_to(self.directory).as_posix())
        )

    # ------------------------------------------------------------------
    @property
    def paths(self) -> Tuple[Path, ...]:
        """The capture files, in scan order."""
        return self._paths

    def __len__(self) -> int:
        return len(self._paths)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CaptureArchive({str(self.directory)!r}, {len(self)} captures)"

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, index: int) -> ColumnTrace:
        """Load capture ``index`` (in scan order) into columns."""
        return load_capture_columns(self._paths[index])

    def __iter__(self) -> Iterator[ColumnTrace]:
        """Yield each capture's columns lazily, in scan order."""
        for path in self._paths:
            yield load_capture_columns(path)

    def items(self) -> Iterator[Tuple[Path, ColumnTrace]]:
        """Yield ``(path, columns)`` pairs lazily, in scan order."""
        for path in self._paths:
            yield path, load_capture_columns(path)

    def iter_chunks(
        self, chunk_frames: int
    ) -> Iterator[Tuple[Path, ColumnTrace]]:
        """Stream every capture as bounded-size column chunks.

        Yields ``(path, chunk)`` pairs; each chunk holds at most
        ``chunk_frames`` frames, so peak memory is bounded by the chunk
        size regardless of capture or archive size.  Chunks of one
        capture arrive consecutively and in time order.
        """
        for path in self._paths:
            for chunk in iter_capture_chunks(path, chunk_frames):
                yield path, chunk

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def write_capture(
        self,
        name: str,
        trace,
        fmt: Optional[str] = None,
    ) -> Path:
        """Write a capture into the archive directory and index it.

        ``fmt`` is ``"candump"``, ``"csv"``, ``"npz"`` or ``"npb"``
        (inferred from the name's suffix when omitted).  Accepts either
        trace representation;
        returns the file path.  The new file is appended to the scan
        order snapshot — and must therefore match the archive's
        patterns, or a freshly constructed archive over the same
        directory would enumerate a different capture set.
        """
        parts = Path(name).parts
        if not parts or ".." in parts:
            raise TraceFormatError(f"invalid capture name {name!r}")
        if len(parts) > 1 and not self.recursive:
            raise TraceFormatError(
                f"capture name {name!r} lands in a subdirectory this "
                f"non-recursive archive would not enumerate"
            )
        path = self.directory / name
        if not any(path.match(pattern) for pattern in self.patterns):
            raise TraceFormatError(
                f"capture name {name!r} matches none of the archive "
                f"patterns {self.patterns}"
            )
        twin = (
            path.with_suffix("")
            if path.suffix.lower() == ".gz"
            else path.with_name(path.name + ".gz")
        )
        if twin in self._paths:
            # One capture, one enumerated file: a plain/gzip twin would
            # be dropped (or shadow this one) on the next enumeration.
            raise TraceFormatError(
                f"capture name {name!r} is the compression twin of "
                f"already-indexed {twin.name!r}"
            )
        ct = ColumnTrace.coerce(trace)
        if fmt is None:
            suffix = capture_suffix(path)
            fmt = {"csv": "csv", "npz": "npz", "npb": "npb"}.get(
                suffix.lstrip("."), "candump"
            )
        if fmt == "csv":
            write_csv_columns(ct, path)
        elif fmt == "npz":
            ct.save_npz(path)
        elif fmt == "npb":
            write_blocks(path, ct)
        elif fmt == "candump":
            write_candump_columns(ct, path)
        else:
            raise TraceFormatError(f"unknown capture format {fmt!r}")
        if path not in self._paths:
            self._paths = tuple(
                sorted(
                    self._paths + (path,),
                    key=lambda p: p.relative_to(self.directory).as_posix(),
                )
            )
        return path

"""Sharded archive scanning: determinism, serial parity, reporting."""

import numpy as np
import pytest

from repro.attacks import SingleIDAttacker
from repro.baselines import FrequencyIDS
from repro.core import (
    BatchEntropyEngine,
    IDSPipeline,
    ShardedScanner,
)
from repro.core.shard import default_workers
from repro.exceptions import DetectorError
from repro.io import CaptureArchive
from repro.io.archive import load_capture_columns
from repro.vehicle import VehicleSimulation
from repro.vehicle.traffic import record_template_windows, simulate_drive


@pytest.fixture(scope="module")
def archive_dir(tmp_path_factory, catalog):
    """Six small captures, one with an injected attack, mixed formats."""
    directory = tmp_path_factory.mktemp("archive")
    archive = CaptureArchive(directory)
    for i in range(6):
        if i == 3:
            sim = VehicleSimulation(catalog=catalog, scenario="city", seed=40 + i)
            sim.add_node(
                SingleIDAttacker(
                    can_id=catalog.ids[60], frequency_hz=100.0,
                    start_s=1.0, duration_s=5.0, seed=i,
                )
            )
            trace = sim.run(7.0)
        else:
            trace = simulate_drive(7.0, seed=40 + i, catalog=catalog)
        archive.write_capture(f"cap{i}.{'csv' if i % 2 else 'log'}", trace)
    return directory


def assert_windows_identical(a, b):
    assert len(a) == len(b)
    for s, t in zip(a, b):
        assert s.index == t.index
        assert s.t_start_us == t.t_start_us and s.t_end_us == t.t_end_us
        assert s.n_messages == t.n_messages
        assert s.n_attack_messages == t.n_attack_messages
        assert np.array_equal(s.probabilities, t.probabilities)
        assert np.array_equal(s.entropy, t.entropy)
        assert np.array_equal(s.deviations, t.deviations)
        assert np.array_equal(s.violated, t.violated)
        assert s.judged == t.judged


class TestShardedScanner:
    def test_one_and_four_workers_identical(
        self, golden_template, ids_config, archive_dir
    ):
        """The determinism satellite: results must not depend on the
        pool size, bit for bit."""
        archive = CaptureArchive(archive_dir)
        serial = ShardedScanner(
            golden_template, ids_config, workers=1
        ).scan_archive(archive)
        sharded = ShardedScanner(
            golden_template, ids_config, workers=4
        ).scan_archive(archive)
        assert [s.path for s in serial] == [s.path for s in sharded]
        for a, b in zip(serial, sharded):
            assert_windows_identical(a.windows, b.windows)

    def test_matches_plain_engine_scan(
        self, golden_template, ids_config, archive_dir
    ):
        archive = CaptureArchive(archive_dir)
        scans = ShardedScanner(
            golden_template, ids_config, workers=2
        ).scan_archive(archive)
        engine = BatchEntropyEngine(golden_template, ids_config)
        for scan in scans:
            assert_windows_identical(
                scan.windows, engine.scan(load_capture_columns(scan.path))
            )

    def test_accepts_path_lists(self, golden_template, ids_config, archive_dir):
        paths = sorted(archive_dir.glob("*.log"))
        scans = ShardedScanner(
            golden_template, ids_config, workers=2
        ).scan_archive(paths)
        assert [s.path for s in scans] == paths

    def test_empty_archive(self, golden_template, ids_config, tmp_path):
        assert ShardedScanner(golden_template, ids_config).scan_archive(
            CaptureArchive(tmp_path)
        ) == []

    def test_alarmed_capture_flagged(
        self, golden_template, ids_config, archive_dir
    ):
        scans = ShardedScanner(
            golden_template, ids_config, workers=2
        ).scan_archive(CaptureArchive(archive_dir))
        alarmed = [s.path.name for s in scans if s.alarmed]
        assert alarmed == ["cap3.csv"]

    def test_rejects_bad_workers(self, golden_template, ids_config):
        with pytest.raises(DetectorError):
            ShardedScanner(golden_template, ids_config, workers=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestBaselineSharding:
    def test_baseline_verdicts_match_serial(
        self, catalog, archive_dir, golden_template, ids_config
    ):
        clean = record_template_windows(6, 2.0, seed=21, catalog=catalog)
        baseline = FrequencyIDS(window_us=ids_config.window_us).fit(clean)
        archive = CaptureArchive(archive_dir)
        scanner = ShardedScanner(golden_template, ids_config, workers=2)
        sharded = scanner.scan_archive_baseline(baseline, archive)
        assert len(sharded) == len(archive)
        for path, verdicts in zip(archive.paths, sharded):
            assert verdicts == baseline.scan(load_capture_columns(path))

    def test_unfitted_baseline_rejected(
        self, golden_template, ids_config, archive_dir
    ):
        scanner = ShardedScanner(golden_template, ids_config, workers=1)
        with pytest.raises(DetectorError):
            scanner.scan_archive_baseline(
                FrequencyIDS(), CaptureArchive(archive_dir)
            )


class TestAnalyzeArchive:
    def test_report_structure_and_metrics(
        self, golden_template, ids_config, catalog, archive_dir
    ):
        pipeline = IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)
        report = pipeline.analyze_archive(archive_dir, workers=2)
        assert len(report) == 6
        assert [p.name for p in report.alarmed_captures] == ["cap3.csv"]
        assert report.detection_rate > 0.9
        assert report.false_positive_rate == 0.0
        attacked = dict(report.captures)[
            [p for p, _ in report.captures if p.name == "cap3.csv"][0]
        ]
        assert attacked.inference is not None  # alarm + pool -> inference
        summary = report.summary()
        assert "cap3.csv: ALARM" in summary and "6 captures" in summary

    def test_accepts_archive_object(
        self, golden_template, ids_config, archive_dir
    ):
        pipeline = IDSPipeline(golden_template, ids_config)
        report = pipeline.analyze_archive(
            CaptureArchive(archive_dir), workers=1
        )
        assert len(report.reports) == 6

"""Experiment E2 — the paper's Fig. 3.

"We calculate the injection rate ... for some selected IDs from the CAN
log data" — 15 identifiers spanning the priority range, injected at a
fixed frequency.  The figure shows two series over the identifier value:

* the injection rate ``Ir``, which starts near 1.0 for dominant
  identifiers and falls as the identifier value (hence arbitration
  priority) drops;
* the detection rate ``Dr``, which falls along with it, because fewer
  successfully injected messages mean smaller entropy changes.

The reproduction prints both series; the crossover shape (monotone
decline of both, Dr tracking Ir) is the comparison target, not the
absolute values, which depend on busload.  The default injection
frequency is 20 Hz — the marginal-detection regime, where the coupling
between injected volume and detectability is visible (at 50–100 Hz
every identifier is detected at ~100 % and the Dr series would be flat).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks import SingleIDAttacker
from repro.experiments.report import hexid, pct, render_table
from repro.experiments.runner import (
    ATTACK_DURATION_S,
    ATTACK_START_S,
    ExperimentSetup,
    build_setup,
    run_attack,
)

#: Number of identifiers sampled across the catalog (the paper tests 15).
N_SELECTED_IDS = 15


@dataclass(frozen=True)
class Fig3Point:
    """One identifier's measurements."""

    can_id: int
    injection_rate: float
    detection_rate: float
    n_injected: int


@dataclass
class Fig3Result:
    """The two series of Fig. 3."""

    frequency_hz: float
    points: List[Fig3Point]

    def render(self) -> str:
        """Identifier vs Ir and Dr, ascending identifier order."""
        rows = [
            [hexid(p.can_id), f"{p.injection_rate:.3f}", pct(p.detection_rate), p.n_injected]
            for p in self.points
        ]
        return render_table(
            headers=["CAN ID", "injection rate", "detection rate", "injected msgs"],
            rows=rows,
            title=(
                f"Fig. 3 — injection and detection rate for {len(self.points)} "
                f"selected CAN IDs at {self.frequency_hz:g} Hz"
            ),
        )

    @property
    def injection_rates(self) -> np.ndarray:
        """Ir series in ascending identifier order."""
        return np.asarray([p.injection_rate for p in self.points])

    @property
    def detection_rates(self) -> np.ndarray:
        """Dr series in ascending identifier order."""
        return np.asarray([p.detection_rate for p in self.points])

    def monotone_trend(self) -> Tuple[float, float]:
        """Linear-fit slopes of (Ir, Dr) against the identifier rank.

        Both slopes are expected to be negative — the paper's headline
        observation for this figure.
        """
        ranks = np.arange(len(self.points), dtype=float)
        ir_slope = float(np.polyfit(ranks, self.injection_rates, 1)[0])
        dr_slope = float(np.polyfit(ranks, self.detection_rates, 1)[0])
        return ir_slope, dr_slope


def select_ids(setup: ExperimentSetup, count: int = N_SELECTED_IDS) -> List[int]:
    """Evenly sample ``count`` identifiers across the ascending catalog."""
    ids = setup.catalog.ids
    indices = np.linspace(0, len(ids) - 1, count).round().astype(int)
    return [int(ids[i]) for i in indices]


def run(
    setup: Optional[ExperimentSetup] = None,
    frequency_hz: float = 20.0,
    seeds: Sequence[int] = (1, 2),
    count: int = N_SELECTED_IDS,
) -> Fig3Result:
    """Measure Ir and Dr for the selected identifiers."""
    if setup is None:
        setup = build_setup()
    points: List[Fig3Point] = []
    for can_id in select_ids(setup, count):
        irs: List[float] = []
        drs: List[Tuple[float, int]] = []
        for seed in seeds:
            attacker = SingleIDAttacker(
                can_id=can_id,
                frequency_hz=frequency_hz,
                start_s=ATTACK_START_S,
                duration_s=ATTACK_DURATION_S,
                seed=seed,
            )
            outcome = run_attack(
                setup,
                attacker,
                k=1,
                scenario_name="fig3",
                frequency_hz=frequency_hz,
                seed=seed,
                evaluate_inference=False,
            )
            irs.append(outcome.injection_rate)
            drs.append((outcome.detection_rate, outcome.n_injected))
        total = sum(n for _d, n in drs)
        detection = sum(d * n for d, n in drs) / total if total else 0.0
        points.append(
            Fig3Point(
                can_id=can_id,
                injection_rate=float(np.mean(irs)),
                detection_rate=detection,
                n_injected=total,
            )
        )
    return Fig3Result(frequency_hz=frequency_hz, points=points)

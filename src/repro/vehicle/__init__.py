"""Synthetic vehicle traffic shaped after the paper's test car.

The paper's measurements come from a 2016 Ford Fusion whose CAN carries
223 active identifiers — 10.88 % of the 2048-value 11-bit space.  This
package generates an equivalent synthetic vehicle:

* :mod:`repro.vehicle.ids_catalog` — a seeded catalog of 223 identifiers
  grouped into functional clusters (powertrain, chassis, body, comfort,
  diagnostics) with realistic period classes;
* :mod:`repro.vehicle.ecu_profiles` — the ECU nodes owning those
  identifiers;
* :mod:`repro.vehicle.driving` — driving scenarios (audio on, lights on,
  cruise control, ...) that modulate the event-driven messages, exactly
  the variation the paper averaged over to build its golden template;
* :mod:`repro.vehicle.traffic` — glue that builds a ready-to-run
  :class:`repro.can.Bus` and records traces.
"""

from repro.vehicle.driving import (
    STANDARD_SCENARIOS,
    DrivingScenario,
    random_scenario,
    scenario_by_name,
)
from repro.vehicle.ecu_profiles import build_ecus
from repro.vehicle.ids_catalog import CatalogEntry, VehicleCatalog, ford_fusion_catalog
from repro.vehicle.multibus import (
    BridgeNode,
    DualBusVehicle,
    build_bus_templates,
    fuse_bus_traces,
)
from repro.vehicle.traffic import VehicleSimulation, simulate_drive

__all__ = [
    "BridgeNode",
    "CatalogEntry",
    "DrivingScenario",
    "DualBusVehicle",
    "fuse_bus_traces",
    "STANDARD_SCENARIOS",
    "VehicleCatalog",
    "VehicleSimulation",
    "build_bus_templates",
    "build_ecus",
    "ford_fusion_catalog",
    "random_scenario",
    "scenario_by_name",
    "simulate_drive",
]

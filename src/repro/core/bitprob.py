"""Streaming per-bit occurrence counters.

This is the data structure behind the paper's cost argument (Section
V.E): whereas the Muter-entropy IDS must keep one counter per *distinct
identifier* (hundreds, growing with the catalog), the bit-slice method
needs exactly ``n_bits`` counters — 11 integers — no matter how many
identifiers are on the bus.

:class:`BitCounter` supports O(n_bits) streaming updates, vectorised
batch updates from identifier arrays, and counter arithmetic (merge and
subtract) so sliding windows can be maintained incrementally.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.can.constants import BASE_ID_BITS
from repro.exceptions import DetectorError


class BitCounter:
    """Counts, for each identifier bit, how many messages carried a 1.

    Bits are indexed MSB-first: index 0 is the paper's "Bit 1" (the most
    significant identifier bit, the one arbitration decides first).
    """

    __slots__ = ("n_bits", "_counts", "_total")

    def __init__(self, n_bits: int = BASE_ID_BITS) -> None:
        if n_bits < 1:
            raise DetectorError(f"n_bits must be >= 1, got {n_bits}")
        self.n_bits = n_bits
        self._counts = np.zeros(n_bits, dtype=np.int64)
        self._total = 0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, can_id: int) -> None:
        """Account one identifier (O(n_bits), allocation-free)."""
        if can_id < 0 or can_id >> self.n_bits:
            raise DetectorError(
                f"identifier 0x{can_id:X} does not fit in {self.n_bits} bits"
            )
        counts = self._counts
        for index in range(self.n_bits):
            if (can_id >> (self.n_bits - 1 - index)) & 1:
                counts[index] += 1
        self._total += 1

    def update_many(self, can_ids: Iterable[int]) -> None:
        """Vectorised batch update from an iterable/array of identifiers."""
        ids = np.asarray(
            can_ids if isinstance(can_ids, np.ndarray) else list(can_ids),
            dtype=np.int64,
        )
        if ids.size == 0:
            return
        if ids.min() < 0 or (int(ids.max()) >> self.n_bits):
            bad = ids[(ids < 0) | (ids >> self.n_bits > 0)][0]
            raise DetectorError(
                f"identifier 0x{int(bad):X} does not fit in {self.n_bits} bits"
            )
        shifts = np.arange(self.n_bits - 1, -1, -1, dtype=np.int64)
        bits = (ids[:, None] >> shifts[None, :]) & 1
        self._counts += bits.sum(axis=0)
        self._total += ids.size

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Number of identifiers accounted so far."""
        return self._total

    def counts(self) -> np.ndarray:
        """Per-bit 1-counts (copy; MSB first)."""
        return self._counts.copy()

    def probabilities(self) -> np.ndarray:
        """The paper's ``p_i`` vector; zeros when the counter is empty."""
        if self._total == 0:
            return np.zeros(self.n_bits, dtype=float)
        return self._counts / float(self._total)

    def is_empty(self) -> bool:
        """True when no identifier has been accounted."""
        return self._total == 0

    # ------------------------------------------------------------------
    # Arithmetic (for sliding windows)
    # ------------------------------------------------------------------
    def merge(self, other: "BitCounter") -> "BitCounter":
        """Add another counter's contents into this one (in place)."""
        self._check_compatible(other)
        self._counts += other._counts
        self._total += other._total
        return self

    def subtract(self, other: "BitCounter") -> "BitCounter":
        """Remove another counter's contents (for expiring window slices).

        Raises
        ------
        DetectorError
            If the subtraction would drive any count or the total
            negative — the slice being removed was never added.
        """
        self._check_compatible(other)
        if other._total > self._total or np.any(other._counts > self._counts):
            raise DetectorError("cannot subtract a counter that is not a subset")
        self._counts -= other._counts
        self._total -= other._total
        return self

    def copy(self) -> "BitCounter":
        """An independent copy."""
        clone = BitCounter(self.n_bits)
        clone._counts = self._counts.copy()
        clone._total = self._total
        return clone

    def reset(self) -> None:
        """Clear all counts."""
        self._counts[:] = 0
        self._total = 0

    def _check_compatible(self, other: "BitCounter") -> None:
        if not isinstance(other, BitCounter):
            raise DetectorError(f"expected BitCounter, got {type(other).__name__}")
        if other.n_bits != self.n_bits:
            raise DetectorError(
                f"bit width mismatch: {self.n_bits} vs {other.n_bits}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_ids(cls, can_ids: Iterable[int], n_bits: int = BASE_ID_BITS) -> "BitCounter":
        """Build a counter directly from identifiers."""
        counter = cls(n_bits)
        counter.update_many(can_ids)
        return counter

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitCounter):
            return NotImplemented
        return (
            self.n_bits == other.n_bits
            and self._total == other._total
            and bool(np.all(self._counts == other._counts))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitCounter(n_bits={self.n_bits}, total={self._total})"

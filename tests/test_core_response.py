"""Response stage: blocklist semantics and end-to-end suppression."""

import pytest

from repro.attacks import SingleIDAttacker
from repro.can.constants import SECOND_US
from repro.core.response import Blocklist, ResponseGate
from repro.exceptions import DetectorError
from repro.vehicle import VehicleSimulation


class TestBlocklist:
    def test_block_and_expiry(self):
        blocklist = Blocklist(ttl_us=1000)
        blocklist.block(0x100, now_us=0)
        assert blocklist.is_blocked(0x100, 500)
        assert not blocklist.is_blocked(0x100, 1000)

    def test_unblocked_id(self):
        assert not Blocklist().is_blocked(0x100, 0)

    def test_rearm_extends(self):
        blocklist = Blocklist(ttl_us=1000)
        blocklist.block(0x100, now_us=0)
        blocklist.block(0x100, now_us=800)
        assert blocklist.is_blocked(0x100, 1500)

    def test_active_listing(self):
        blocklist = Blocklist(ttl_us=1000)
        blocklist.block(0x300, 0)
        blocklist.block(0x100, 0)
        assert blocklist.active(10) == [0x100, 0x300]
        assert blocklist.active(2000) == []

    def test_clear(self):
        blocklist = Blocklist(ttl_us=1000)
        blocklist.block(0x100, 0)
        blocklist.clear()
        assert not blocklist.is_blocked(0x100, 1)


class TestResponseGate:
    @pytest.fixture()
    def attacked_trace(self, catalog):
        sim = VehicleSimulation(catalog=catalog, scenario="city", seed=71)
        sim.add_node(
            SingleIDAttacker(
                can_id=catalog.ids[60], frequency_hz=100.0, start_s=2.0,
                duration_s=14.0, seed=5,
            )
        )
        return sim.run(18.0), catalog.ids[60]

    def test_suppresses_most_attack_traffic(
        self, golden_template, ids_config, catalog, attacked_trace
    ):
        trace, attack_id = attacked_trace
        gate = ResponseGate(
            golden_template, catalog.ids, ids_config,
            block_top=1, ttl_us=20 * SECOND_US,
        )
        outcome = gate.process_trace(trace)
        # Detection needs a window or two; everything after is blocked.
        assert outcome.attack_suppression > 0.5
        assert attack_id in outcome.blocked_ids

    def test_collateral_damage_bounded(
        self, golden_template, ids_config, catalog, attacked_trace
    ):
        trace, attack_id = attacked_trace
        gate = ResponseGate(
            golden_template, catalog.ids, ids_config, block_top=1
        )
        outcome = gate.process_trace(trace)
        # Blocking one identifier suppresses at most that identifier's
        # legitimate share (the abused ID's real messages) plus nothing.
        assert outcome.collateral_rate < 0.02

    def test_clean_traffic_passes_untouched(
        self, golden_template, ids_config, catalog
    ):
        from repro.vehicle.traffic import simulate_drive

        trace = simulate_drive(8.0, scenario="city", seed=72, catalog=catalog)
        gate = ResponseGate(golden_template, catalog.ids, ids_config)
        outcome = gate.process_trace(trace)
        assert outcome.dropped == 0
        assert outcome.forwarded == len(trace)
        assert outcome.blocked_ids == []

    def test_blocks_expire(self, golden_template, ids_config, catalog):
        """After the attack stops and the block expires, the abused
        identifier's legitimate messages flow again."""
        sim = VehicleSimulation(catalog=catalog, scenario="city", seed=73)
        attack_id = catalog.ids[60]
        sim.add_node(
            SingleIDAttacker(
                can_id=attack_id, frequency_hz=100.0, start_s=2.0,
                duration_s=4.0, seed=6,
            )
        )
        trace = sim.run(30.0)
        gate = ResponseGate(
            golden_template, catalog.ids, ids_config,
            block_top=1, ttl_us=5 * SECOND_US,
        )
        gate.process_trace(trace)
        tail = gate.forwarded_trace.between(20 * SECOND_US, 30 * SECOND_US)
        assert any(r.can_id == attack_id for r in tail)

    def test_downstream_callback(self, golden_template, ids_config, catalog):
        from repro.vehicle.traffic import simulate_drive

        seen = []
        trace = simulate_drive(4.0, scenario="city", seed=74, catalog=catalog)
        gate = ResponseGate(
            golden_template, catalog.ids, ids_config, downstream=seen.append
        )
        gate.process_trace(trace)
        assert len(seen) == len(trace)

    def test_validates_block_top(self, golden_template, ids_config, catalog):
        with pytest.raises(DetectorError):
            ResponseGate(golden_template, catalog.ids, ids_config, block_top=0)

    def test_outcome_summary(self, golden_template, ids_config, catalog):
        from repro.vehicle.traffic import simulate_drive

        trace = simulate_drive(4.0, scenario="city", seed=75, catalog=catalog)
        gate = ResponseGate(golden_template, catalog.ids, ids_config)
        outcome = gate.process_trace(trace)
        assert "suppression" in outcome.summary()

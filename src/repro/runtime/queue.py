"""The filesystem work-queue executor: scans that span hosts.

The pool backend scales to one machine's cores; a fleet-sized archive
wants more.  :class:`WorkQueueExecutor` spills each shard task as a
small JSON spec into a *queue directory* — any filesystem the
coordinator and its workers share (local disk, NFS, a mounted bucket).
Independent ``repro-ids worker`` processes, launchable on any host that
mounts the directory, claim tasks and upload results; the coordinator
collects and reorders.  No sockets, no broker, no new dependency — the
only primitives are atomic rename (claiming) and atomic write
(publishing), both POSIX guarantees.

Queue directory layout::

    <queue>/
      tasks/     posted task specs, awaiting a claimant
      claimed/   tasks being executed (claim = rename tasks/x -> claimed/x)
      results/   uploaded result dicts, named after their task
      failed/    malformed task files quarantined by workers
      stop       (optional) tells every worker to exit after its task

The claim protocol: a worker picks the oldest task file and
``os.rename``\\ s it into ``claimed/``.  Rename is atomic, so exactly
one claimant wins; the losers get ``FileNotFoundError`` and move on.
Results are written with :func:`repro.io.atomic.atomic_write_text`, so
a visible result file is always complete.  Task results use the fleet
ledger's serialisation protocol (``WindowResult.to_dict``, bit-exact
float round trips), which is what makes a queue scan **bit-identical**
to a serial scan of the same archive.

The coordinator *also drains the queue itself* while waiting (on by
default): with zero workers a queue scan degrades to a serial scan
instead of hanging, and with busy workers the coordinator's cycles are
not wasted.  Claimed tasks whose worker died are re-posted after
``stale_claim_s`` (mtime-based), so a killed worker delays a scan, it
never wedges one.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import DetectorError
from repro.io.atomic import atomic_write_text
from repro.runtime.base import Executor, ScanSpec, spec_from_payload

__all__ = [
    "WorkQueueExecutor",
    "claim_next_task",
    "execute_claimed_task",
    "queue_dirs",
]

#: Queue-dir protocol version, stamped into every task file.
QUEUE_VERSION = 1

#: Name of the file that tells workers to exit (coordinator-independent
#: shutdown; see ``repro-ids worker --stop-file``).
STOP_FILENAME = "stop"


def queue_dirs(queue_dir: Union[str, Path]) -> Tuple[Path, Path, Path, Path]:
    """Create (idempotently) and return the queue's subdirectories."""
    root = Path(queue_dir)
    dirs = (root / "tasks", root / "claimed", root / "results", root / "failed")
    for d in dirs:
        d.mkdir(parents=True, exist_ok=True)
    return dirs


def _task_name(job: str, index: int) -> str:
    return f"{job}-{index:06d}.json"


def _index_of(name: str) -> int:
    return int(name.rsplit("-", 1)[1].split(".", 1)[0])


def claim_next_task(
    queue_dir: Union[str, Path], job: Optional[str] = None
) -> Optional[Path]:
    """Claim the oldest pending task via atomic rename; None when idle.

    ``job`` restricts claiming to one coordinator's tasks (the
    coordinator's own drain loop uses this so it never executes another
    scan's work while its own is pending).
    """
    tasks, claimed, _, _ = queue_dirs(queue_dir)
    pattern = f"{job}-*.json" if job else "*.json"
    for path in sorted(tasks.glob(pattern)):
        target = claimed / path.name
        try:
            os.rename(path, target)
        except FileNotFoundError:
            continue  # another claimant won the rename race
        try:
            # rename preserves the posting mtime; stamp the claim time,
            # or a task that merely *queued* longer than stale_claim_s
            # would look instantly stale and be reposted mid-execution.
            os.utime(target)
        except OSError:
            pass
        return target
    return None


def execute_claimed_task(
    claimed_path: Path, scanners: Optional[Dict[str, object]] = None
) -> bool:
    """Run one claimed task file and publish its result.

    ``scanners`` caches built scanners keyed by the canonical spec
    payload, so a worker draining a whole archive builds its engine
    once, exactly like a pool worker.  Returns True when a result
    (success *or* recorded failure) was published; False when the task
    file itself was malformed and quarantined into ``failed/`` — a
    foreign or torn task must not crash a fleet's shared worker.

    A scan failure (unreadable capture, template mismatch) publishes an
    *error result* instead of raising: the coordinator is the process
    with a human attached, so errors surface there, and the queue never
    wedges on a poison task.
    """
    queue_root = claimed_path.parent.parent
    _, _, results, failed = queue_dirs(queue_root)
    try:
        task = json.loads(claimed_path.read_text(encoding="ascii"))
        if task["version"] != QUEUE_VERSION:
            raise ValueError(f"queue protocol version {task['version']!r}")
        spec_payload = task["spec"]
        capture = task["path"]
        name = _task_name(task["job"], int(task["index"]))
    except (ValueError, KeyError, TypeError, OSError):
        target = failed / claimed_path.name
        try:
            os.replace(claimed_path, target)
        except OSError:
            pass
        return False

    key = json.dumps(spec_payload, sort_keys=True)
    outcome: dict
    try:
        spec = spec_from_payload(spec_payload)
        if scanners is not None and key in scanners:
            scan = scanners[key]
        else:
            scan = spec.make_scanner()
            if scanners is not None:
                scanners[key] = scan
        result = scan(capture)
        outcome = {
            "version": QUEUE_VERSION,
            "job": task["job"],
            "index": int(task["index"]),
            "result": spec.encode_result(result),
        }
    except Exception as exc:  # noqa: BLE001 - published, not swallowed
        outcome = {
            "version": QUEUE_VERSION,
            "job": task["job"],
            "index": int(task["index"]),
            "error": f"{type(exc).__name__}: {exc}",
        }
    atomic_write_text(results / name, json.dumps(outcome))
    try:
        claimed_path.unlink()
    except OSError:
        pass
    return True


class WorkQueueExecutor(Executor):
    """Distribute shard tasks through a shared queue directory.

    Parameters
    ----------
    queue_dir:
        The shared directory (created if missing).  Workers are started
        independently: ``repro-ids worker --queue <dir>`` on any host
        mounting it.
    poll_s:
        Coordinator sleep between collection sweeps when it has nothing
        to drain itself.
    timeout_s:
        Give up (``DetectorError``) when no new result has arrived for
        this long.  ``None`` waits forever — safe with
        ``coordinator_drains`` (progress is then guaranteed even with
        zero workers).
    coordinator_drains:
        When True (default) the coordinator claims and executes its own
        pending tasks while waiting, so workers accelerate a scan but
        are never required for one — including on failure: a worker's
        *error result* (missing mount on its host, transient IO fault)
        is retried locally instead of aborting the scan, and only a
        local failure (the capture really is bad) propagates.  With
        False, an error result raises immediately.
    stale_claim_s:
        Claimed tasks older than this are re-posted for another worker
        (crash recovery).  The scan stays correct either way: duplicate
        results of a deterministic task are byte-identical, and the
        coordinator takes whichever arrives.
    orphan_ttl_s:
        At job start the coordinator sweeps ``results/`` and ``failed/``
        files older than this (leftovers of SIGKILLed coordinators or
        workers that finished after their job's cleanup), so a
        long-lived shared queue directory cannot leak files without
        bound.
    """

    def __init__(
        self,
        queue_dir: Union[str, Path],
        poll_s: float = 0.05,
        timeout_s: Optional[float] = None,
        coordinator_drains: bool = True,
        stale_claim_s: float = 300.0,
        orphan_ttl_s: float = 86400.0,
    ) -> None:
        self.queue_dir = Path(queue_dir)
        if poll_s <= 0 or stale_claim_s <= 0 or orphan_ttl_s <= 0:
            raise DetectorError(
                "poll_s, stale_claim_s and orphan_ttl_s must be positive"
            )
        self.poll_s = float(poll_s)
        self.timeout_s = timeout_s
        self.coordinator_drains = bool(coordinator_drains)
        self.stale_claim_s = float(stale_claim_s)
        self.orphan_ttl_s = float(orphan_ttl_s)

    # ------------------------------------------------------------------
    def _sweep_orphans(self) -> None:
        """Drop result/failed files no live job can still be collecting."""
        _, _, results, failed = queue_dirs(self.queue_dir)
        cutoff = time.time() - self.orphan_ttl_s
        for directory in (results, failed):
            for path in directory.glob("*.json"):
                try:
                    if path.stat().st_mtime < cutoff:
                        path.unlink()
                except OSError:
                    continue  # another sweeper won, or the file is live

    def _post(self, spec: ScanSpec, paths: Sequence[str]) -> str:
        self._sweep_orphans()
        tasks, _, _, _ = queue_dirs(self.queue_dir)
        job = uuid.uuid4().hex[:12]
        payload = spec.to_payload()
        for index, path in enumerate(paths):
            task = {
                "version": QUEUE_VERSION,
                "job": job,
                "index": index,
                "path": str(Path(path).resolve()),
                "spec": payload,
            }
            atomic_write_text(tasks / _task_name(job, index), json.dumps(task))
        return job

    def _repost_stale_claims(self, job: str) -> None:
        tasks, claimed, _, _ = queue_dirs(self.queue_dir)
        cutoff = time.time() - self.stale_claim_s
        for path in claimed.glob(f"{job}-*.json"):
            try:
                if path.stat().st_mtime > cutoff:
                    continue
                os.rename(path, tasks / path.name)
            except OSError:
                continue  # the worker finished (or another reposter won)

    def _cleanup(self, job: str) -> None:
        # failed/ is deliberately spared: when run() raises over a
        # quarantined task it points the operator at that directory, so
        # the evidence must outlive the job (the orphan TTL sweeps it).
        tasks, claimed, results, _ = queue_dirs(self.queue_dir)
        for d in (tasks, claimed, results):
            for path in d.glob(f"{job}-*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    def run(
        self, spec: ScanSpec, paths: Sequence[Union[str, Path]]
    ) -> List[list]:
        if not spec.portable:
            raise DetectorError(
                f"{type(spec).__name__} cannot be shipped through a work "
                f"queue; use the serial or pool executor"
            )
        names = [str(p) for p in paths]
        if not names:
            return []
        job = self._post(spec, names)
        _, _, results_dir, failed_dir = queue_dirs(self.queue_dir)
        collected: Dict[int, list] = {}
        scanners: Dict[str, object] = {}
        local_scan = None
        last_progress = time.monotonic()
        try:
            while len(collected) < len(names):
                progressed = False
                for path in sorted(results_dir.glob(f"{job}-*.json")):
                    index = _index_of(path.name)
                    if index in collected:
                        continue
                    outcome = json.loads(path.read_text(encoding="ascii"))
                    if "error" in outcome:
                        if not self.coordinator_drains:
                            raise DetectorError(
                                f"worker failed scanning {names[index]}: "
                                f"{outcome['error']}"
                            )
                        # Workers accelerate a scan, they must never be
                        # *required* for one: a remote failure (missing
                        # mount on another host, transient IO fault)
                        # degrades to local execution.  A capture that is
                        # genuinely bad fails here too — with the true
                        # local exception instead of a relayed string.
                        if local_scan is None:
                            local_scan = spec.make_scanner()
                        collected[index] = local_scan(names[index])
                    else:
                        collected[index] = spec.decode_result(
                            outcome["result"]
                        )
                    progressed = True
                quarantined = sorted(failed_dir.glob(f"{job}-*.json"))
                if quarantined:
                    # A worker could not even parse one of this job's
                    # task files (transient IO fault, protocol-version
                    # skew after a rolling upgrade).  No result will
                    # ever arrive for it, so waiting — even with
                    # coordinator draining — would hang; surface it.
                    raise DetectorError(
                        f"worker quarantined task(s) "
                        f"{', '.join(p.name for p in quarantined)} under "
                        f"{failed_dir}; check the queue's worker versions"
                    )
                if len(collected) >= len(names):
                    break
                if self.coordinator_drains:
                    claimed = claim_next_task(self.queue_dir, job)
                    if claimed is not None:
                        execute_claimed_task(claimed, scanners)
                        progressed = True
                if progressed:
                    last_progress = time.monotonic()
                    continue
                self._repost_stale_claims(job)
                if (
                    self.timeout_s is not None
                    and time.monotonic() - last_progress > self.timeout_s
                ):
                    raise DetectorError(
                        f"work queue {self.queue_dir} made no progress for "
                        f"{self.timeout_s:g}s with {len(names) - len(collected)}"
                        f" of {len(names)} tasks outstanding"
                    )
                time.sleep(self.poll_s)
        finally:
            self._cleanup(job)
        return [collected[i] for i in range(len(names))]

    def describe(self) -> str:
        return f"queue({self.queue_dir})"

"""Extension attack: replay of recorded traffic.

Not one of the paper's four evaluated scenarios, but listed among the
attacks CAN cannot defend against ("message replays, injections, and
modification").  The replay attacker re-injects the (identifier,
payload) pairs of a previously captured trace segment at a configurable
speed factor.  Because replayed identifiers follow the legitimate mix,
the per-bit probability shift is much smaller than for priority-seeking
injection — a deliberately hard case that the extension experiments use
to probe the IDS's limits.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.attacks.base import AttackerNode
from repro.exceptions import BusConfigError
from repro.io.trace import TraceRecord


class ReplayAttacker(AttackerNode):
    """Replay a recorded trace segment.

    Parameters
    ----------
    recording:
        Trace records to replay (in order).  Only identifier and payload
        are used; timing comes from ``frequency_hz`` like every attacker,
        so a 2x-rate replay is simply a higher frequency.
    loop:
        Restart from the beginning when the recording is exhausted; with
        ``loop=False`` the attacker goes silent instead.
    """

    def __init__(
        self,
        recording: Sequence[TraceRecord],
        name: str = "mallory_replay",
        frequency_hz: float = 50.0,
        loop: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(name, frequency_hz, **kwargs)
        frames: List[Tuple[int, bytes]] = [
            (record.can_id, record.data) for record in recording
        ]
        if not frames:
            raise BusConfigError("ReplayAttacker needs a non-empty recording")
        self._frames = frames
        self.loop = loop
        self._cursor = 0
        self._next_payload: bytes = b""

    def next_release(self):
        if (
            not self.loop
            and self._cursor >= len(self._frames)
            and self._pending is None
        ):
            return None  # recording exhausted
        return super().next_release()

    def select_id(self) -> int:
        self._cursor %= len(self._frames)
        can_id, payload = self._frames[self._cursor]
        self._cursor += 1
        self._next_payload = payload
        return can_id

    def build_payload(self) -> bytes:
        return self._next_payload

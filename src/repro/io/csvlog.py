"""Vehicle-Spy-like CSV trace format.

The paper's raw data was captured with Vehicle Spy 3 Professional, which
exports CSV.  We implement a compact equivalent with an explicit header
so traces round-trip losslessly, including the simulator ground truth::

    time_us,can_id_hex,extended,dlc,data_hex,source,is_attack
    12345,1A4,0,4,DEADBEEF,ECU_Powertrain,0

Files named ``*.gz`` are read and written gzip-compressed,
transparently: every reader produces results identical to reading the
uncompressed file.
"""

from __future__ import annotations

import csv
import sys
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

import numpy as np

from repro.exceptions import TraceFormatError
from repro.io._builder import ColumnBuilder, rechunk_parts
from repro.io._gz import (
    DEFAULT_BLOCK_BYTES,
    iter_line_blocks,
    open_text,
    read_bytes,
)
from repro.io.columnar import ColumnTrace
from repro.io.trace import Trace, TraceRecord
from repro.io.vectorparse import parse_csv_bytes

HEADER = ["time_us", "can_id_hex", "extended", "dlc", "data_hex", "source", "is_attack"]


def write_csv(trace: Iterable[TraceRecord], path: Union[str, Path]) -> None:
    """Write a trace to ``path`` as CSV with the module header."""
    with open_text(path, "w") as handle:
        writer = csv.writer(handle)
        writer.writerow(HEADER)
        for record in trace:
            writer.writerow(
                [
                    record.timestamp_us,
                    f"{record.can_id:X}",
                    int(record.extended),
                    record.dlc,
                    record.data.hex().upper(),
                    record.source,
                    int(record.is_attack),
                ]
            )


def read_csv(path: Union[str, Path]) -> Trace:
    """Read a CSV trace written by :func:`write_csv`."""
    trace = Trace()
    with open_text(path, "r") as handle:
        reader = csv.reader(handle)
        _check_csv_header(reader, path)
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(HEADER):
                raise TraceFormatError(
                    f"{path}:{lineno}: expected {len(HEADER)} fields, got {len(row)}"
                )
            try:
                time_us, id_hex, extended, dlc, data_hex, source, is_attack = row
                dlc_value = int(dlc)
                record = TraceRecord(
                    timestamp_us=int(time_us),
                    can_id=int(id_hex, 16),
                    data=bytes.fromhex(data_hex),
                    extended=bool(int(extended)),
                    source=source,
                    is_attack=bool(int(is_attack)),
                )
            except ValueError as exc:
                raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
            if record.dlc != dlc_value:
                raise TraceFormatError(
                    f"{path}:{lineno}: dlc field {dlc} disagrees with payload "
                    f"length {record.dlc}"
                )
            trace.append(record)
    return trace


# ----------------------------------------------------------------------
# Columnar-native path (no per-frame TraceRecord allocation)
# ----------------------------------------------------------------------

def _append_csv_row(builder: ColumnBuilder, row, lineno: int, path) -> None:
    """Validate one CSV row and append its fields to the builder."""
    if len(row) != len(HEADER):
        raise TraceFormatError(
            f"{path}:{lineno}: expected {len(HEADER)} fields, got {len(row)}"
        )
    time_us, id_hex, extended, dlc, data_hex, source, is_attack = row
    try:
        # Decode the payload exactly as the record path does — fromhex
        # tolerates whitespace between byte pairs — and hand the builder
        # the normalised hex.
        data = bytes.fromhex(data_hex)
        dlc_value = int(dlc)
        builder.append(
            int(time_us),
            int(id_hex, 16),
            data.hex(),
            bool(int(extended)),
            source,
            bool(int(is_attack)),
            lineno,
        )
    except ValueError as exc:
        raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
    if len(data) != dlc_value:
        raise TraceFormatError(
            f"{path}:{lineno}: dlc field {dlc} disagrees with payload "
            f"length {len(data)}"
        )


def _check_csv_header(reader, path) -> None:
    header = next(reader, None)
    if header != HEADER:
        raise TraceFormatError(
            f"{path}: unexpected CSV header {header!r}; expected {HEADER!r}"
        )


def _iter_csv_columns_rows(
    path: Union[str, Path],
    chunk_frames: int,
    skip_rows: int = 0,
    last_timestamp: Optional[int] = None,
) -> Iterator[ColumnTrace]:
    """The ``csv``-module chunked reader (the pre-vectorised path).

    Serves three callers: the whole-file robust fallback, the baseline
    the ingest throughput experiment measures against, and the
    mid-stream continuation of the block-vectorised reader — the only
    correct parser once a quoted field appears, because quoting lets a
    logical row span physical lines.  ``skip_rows`` data rows are
    consumed without re-emitting them (the fast path already yielded
    them; rows it accepts are quote-free single-line rows that the
    ``csv`` module tokenises identically), and ``last_timestamp``
    carries the monotonicity horizon across the handover.
    """
    if chunk_frames <= 0:
        raise TraceFormatError(
            f"chunk_frames must be positive, got {chunk_frames}"
        )
    builder = ColumnBuilder()
    seen = 0
    with open_text(path, "r") as handle:
        reader = csv.reader(handle)
        _check_csv_header(reader, path)
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if seen < skip_rows:
                seen += 1
                continue
            _append_csv_row(builder, row, lineno, path)
            if len(builder) >= chunk_frames:
                chunk = builder.build(path, last_timestamp)
                last_timestamp = chunk.end_us
                builder = ColumnBuilder()
                yield chunk
    if len(builder):
        yield builder.build(path, last_timestamp)


def _csv_block_parts(
    path: Union[str, Path], chunk_frames: int, block_bytes: int
) -> Iterator[ColumnTrace]:
    """Parse a CSV trace block by block into validated column parts.

    Each block of whole lines (the first must start with the header)
    goes through the vectorised
    :func:`repro.io.vectorparse.parse_csv_bytes`.  On the first sign of
    trouble — a quote byte (quoted fields may span physical lines, so
    byte blocks can no longer be split on ``\\n``), a row structure the
    vector parser rejects, or a timestamp violating time order — the
    stream hands over *permanently* to the ``csv``-module reader, which
    skips the rows already emitted and continues with identical per-row
    diagnostics.
    """
    consumed = 0
    last_end: Optional[int] = None
    for data, lineno_base in iter_line_blocks(path, block_bytes):
        part: Optional[ColumnTrace] = None
        if b'"' not in data:
            if lineno_base:
                # Continuation blocks lack the header line the vector
                # parser validates; re-prepend it.
                buf = np.frombuffer(
                    _HEADER_BYTES + b"\n" + data, dtype=np.uint8
                )
            else:
                buf = np.frombuffer(data, dtype=np.uint8)
            cols = parse_csv_bytes(buf, _HEADER_BYTES)
            if cols:
                try:
                    part = ColumnTrace(**cols)
                except TraceFormatError:
                    part = None  # the csv-module re-parse names the row
                else:
                    if last_end is not None and part.start_us < last_end:
                        part = None
            elif cols is not None:  # pragma: no cover - header-only block
                continue
        if part is None:
            yield from _iter_csv_columns_rows(
                path, chunk_frames, skip_rows=consumed, last_timestamp=last_end
            )
            return
        if len(part):
            consumed += len(part)
            last_end = part.end_us
            yield part


def iter_csv_columns(
    path: Union[str, Path],
    chunk_frames: int,
    *,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> Iterator[ColumnTrace]:
    """Stream a CSV trace as :class:`ColumnTrace` chunks.

    Yields consecutive chunks of exactly ``chunk_frames`` frames (the
    last may be short; bounded memory for captures larger than RAM).
    Parsing is block-vectorised: ``block_bytes``-sized byte blocks of
    whole lines (gzip decompresses block-wise) take the same
    :func:`~repro.io.vectorparse.parse_csv_bytes` fast path as the
    whole-file reader; files the vector parser cannot digest (quoting,
    ragged rows, bad values) hand over to the full ``csv``-module path
    and its per-row diagnostics.  Monotonicity is enforced across block
    and chunk boundaries; bit-identical to :func:`read_csv_columns` on
    any input.
    """
    if chunk_frames <= 0:
        raise TraceFormatError(
            f"chunk_frames must be positive, got {chunk_frames}"
        )
    return rechunk_parts(
        _csv_block_parts(path, chunk_frames, block_bytes), chunk_frames
    )


def _read_csv_columns_robust(path: Union[str, Path]) -> ColumnTrace:
    """Row-by-row columnar read with per-row diagnostics.

    The fallback for :func:`read_csv_columns` when the bulk fast path
    cannot digest the file (quoted fields, ragged rows, bad values):
    the full ``csv`` module parses each row (as one unbounded chunk of
    the row-based reader) and errors carry line numbers.
    """
    for chunk in _iter_csv_columns_rows(path, chunk_frames=sys.maxsize):
        return chunk
    return ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))


#: The header as the vector parser expects it on the first line.
_HEADER_BYTES = ",".join(HEADER).encode("ascii")


def read_csv_columns(path: Union[str, Path]) -> ColumnTrace:
    """Read a CSV trace straight into a :class:`ColumnTrace`.

    Bit-identical to ``ColumnTrace.from_trace(read_csv(path))`` —
    including the ground-truth ``source``/``is_attack`` fields — without
    allocating a :class:`TraceRecord` per row: the whole file loads as
    one byte buffer and
    :func:`repro.io.vectorparse.parse_csv_bytes` extracts every column
    with vectorised passes.  Files the vector parser cannot digest
    (quoting, ragged rows) fall back to the full ``csv``-module path
    and its per-row diagnostics.  ``.gz`` files decompress into the
    byte buffer first and take the same vectorised path.
    """
    buf = np.frombuffer(read_bytes(path), dtype=np.uint8)
    cols = parse_csv_bytes(buf, _HEADER_BYTES)
    if cols is None:
        return _read_csv_columns_robust(path)
    if not cols:
        return ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))
    try:
        return ColumnTrace(**cols)
    except TraceFormatError:
        # Re-parse for an error message naming the offending row.
        return _read_csv_columns_robust(path)


def write_csv_columns(ct: ColumnTrace, path: Union[str, Path]) -> None:
    """Write a :class:`ColumnTrace` as CSV with the module header.

    Byte-identical to ``write_csv(ct.to_trace(), path)`` but renders
    straight from the columns (bus tags are columnar-only metadata and
    are not written).
    """
    n = len(ct)
    base = int(ct.payload_offsets[0]) if n else 0
    hex_all = ct.payload_bytes().tobytes().hex().upper()
    offsets = ((ct.payload_offsets - base) * 2).tolist()
    dlc = ct.dlc.tolist()
    with open_text(path, "w") as handle:
        writer = csv.writer(handle)
        writer.writerow(HEADER)
        writer.writerows(
            (t, f"{i:X}", int(e), d, hex_all[offsets[k]:offsets[k + 1]], s, int(a))
            for k, (t, i, e, d, s, a) in enumerate(
                zip(
                    ct.timestamp_us.tolist(),
                    ct.can_id.tolist(),
                    ct.extended.tolist(),
                    dlc,
                    ct.sources(),
                    ct.is_attack.tolist(),
                )
            )
        )

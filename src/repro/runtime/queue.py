"""The filesystem transport of the scan fabric: scans over shared disk.

:class:`WorkQueueExecutor` is the degenerate transport of the protocol
in :mod:`repro.runtime.protocol`: every fabric primitive maps onto a
POSIX filesystem guarantee, so any directory the coordinator and its
workers share (local disk, NFS, a mounted bucket) is a broker.

====================  ==============================================
fabric primitive      filesystem realisation
====================  ==============================================
post a task           atomic write of ``tasks/<job>-<index>.json``
                      (:class:`~repro.runtime.protocol.TaskMessage`
                      wire format)
claim a task          ``os.rename`` into ``claimed/`` — atomic, so
                      exactly one claimant wins
claim lease           the claimed file's mtime, restamped at claim
                      time (:class:`~repro.runtime.protocol.ClaimToken`
                      semantics; ``stale_claim_s`` is the lease)
publish a result      atomic write of ``results/<job>-<index>.json``
                      (:class:`~repro.runtime.protocol.TaskResult`
                      wire format — the ledger protocol's bit-exact
                      float round trips)
quarantine            ``os.replace`` into ``failed/``
====================  ==============================================

Queue directory layout::

    <queue>/
      tasks/     posted task specs, awaiting a claimant
      claimed/   tasks being executed (claim = rename tasks/x -> claimed/x)
      results/   uploaded result dicts, named after their task
      failed/    malformed task files (and ``*.json.corrupt`` result
                 files) quarantined with their evidence intact
      stop       (optional) tells every worker to exit after its task

The coordinator *also drains the queue itself* while waiting (on by
default): with zero workers a queue scan degrades to a serial scan
instead of hanging, and with busy workers the coordinator's cycles are
not wasted.  Claimed tasks whose worker died are re-posted after
``stale_claim_s`` (mtime-based), so a killed worker delays a scan, it
never wedges one.  The TCP transport (:mod:`repro.runtime.net`) speaks
the same protocol without requiring the shared directory at all.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.exceptions import DetectorError
from repro.io.atomic import atomic_write_text
from repro.runtime.base import Executor, ScanSpec
from repro.runtime.protocol import (
    PROTOCOL_VERSION,
    ResultCollector,
    TaskFormatError,
    TaskMessage,
    TaskResult,
    execute_task,
    fabric_stats,
    make_tasks,
    require_portable,
)

__all__ = [
    "WorkQueueExecutor",
    "claim_next_task",
    "execute_claimed_task",
    "queue_dirs",
    "queue_stats",
]

#: Queue-dir protocol version (the fabric protocol version; the wire
#: format is shared with the TCP transport).
QUEUE_VERSION = PROTOCOL_VERSION

#: Name of the file that tells workers to exit (coordinator-independent
#: shutdown; see ``repro-ids worker --stop-file``).
STOP_FILENAME = "stop"


def queue_dirs(queue_dir: Union[str, Path]) -> Tuple[Path, Path, Path, Path]:
    """Create (idempotently) and return the queue's subdirectories."""
    root = Path(queue_dir)
    dirs = (root / "tasks", root / "claimed", root / "results", root / "failed")
    for d in dirs:
        d.mkdir(parents=True, exist_ok=True)
    return dirs


def _index_of(name: str) -> int:
    return int(name.rsplit("-", 1)[1].split(".", 1)[0])


def claim_next_task(
    queue_dir: Union[str, Path], job: Optional[str] = None
) -> Optional[Path]:
    """Claim the oldest pending task via atomic rename; None when idle.

    ``job`` restricts claiming to one coordinator's tasks (the
    coordinator's own drain loop uses this so it never executes another
    scan's work while its own is pending).
    """
    tasks, claimed, _, _ = queue_dirs(queue_dir)
    pattern = f"{job}-*.json" if job else "*.json"
    for path in sorted(tasks.glob(pattern)):
        target = claimed / path.name
        try:
            os.rename(path, target)
        except FileNotFoundError:
            continue  # another claimant won the rename race
        try:
            # rename preserves the posting mtime; stamp the claim time,
            # or a task that merely *queued* longer than stale_claim_s
            # would look instantly stale and be reposted mid-execution.
            os.utime(target)
        except OSError:
            pass
        return target
    return None


def queue_stats(queue_dir: Union[str, Path]) -> dict:
    """Snapshot a queue directory as the shared fabric-stats schema.

    The filesystem face of the TCP coordinator's ``stats`` verb: the
    same :func:`~repro.runtime.protocol.fabric_stats` document, filled
    from directory state.  Point-in-time by construction — results are
    counted while they await collection, and lease ages come from
    claimed-file mtimes (exactly the lease the reposter enforces).  The
    queue keeps no claimant registry, so ``workers`` is empty and each
    outstanding claim reports ``claimant: None``.
    """
    root = Path(queue_dir)
    if not root.is_dir():
        raise DetectorError(f"no queue directory at {root}")
    tasks, claimed, results, failed = queue_dirs(root)
    now = time.time()
    jobs: Dict[str, dict] = {}

    def bump(name: str, state: str) -> None:
        stem = name.split(".", 1)[0]
        job = stem.rsplit("-", 1)[0]
        row = jobs.setdefault(
            job, {"total": 0, "pending": 0, "claimed": 0, "done": 0}
        )
        row[state] += 1
        row["total"] += 1

    n_queued = 0
    for path in tasks.glob("*.json"):
        bump(path.name, "pending")
        n_queued += 1
    claims = []
    for path in claimed.glob("*.json"):
        bump(path.name, "claimed")
        try:
            age = now - path.stat().st_mtime
        except OSError:
            continue  # the claimant finished mid-scan
        claims.append(
            {
                "task": path.name.split(".", 1)[0],
                "claimant": None,
                "lease_age_s": round(max(age, 0.0), 3),
            }
        )
    n_done = 0
    for path in results.glob("*.json"):
        bump(path.name, "done")
        n_done += 1
    n_quarantined = sum(1 for _ in failed.glob("*.json*"))
    return fabric_stats(
        "queue",
        draining=(root / STOP_FILENAME).exists(),
        tasks={
            "queued": n_queued,
            "claimed": len(claims),
            "completed": n_done,
            "reposted": 0,
            "quarantined": n_quarantined,
        },
        jobs=jobs,
        claims=sorted(claims, key=lambda row: row["task"]),
    )


def execute_claimed_task(
    claimed_path: Path,
    scanners: Optional[Dict[str, object]] = None,
    stats: Optional[object] = None,
) -> bool:
    """Run one claimed task file and publish its result.

    The filesystem face of :func:`repro.runtime.protocol.execute_task`:
    decode the task file, execute, publish the
    :class:`~repro.runtime.protocol.TaskResult` atomically.  Returns
    True when a result (success *or* recorded failure) was published;
    False when the task file itself was malformed and quarantined into
    ``failed/`` — a foreign or torn task must not crash a fleet's
    shared worker.
    """
    queue_root = claimed_path.parent.parent
    _, _, results, failed = queue_dirs(queue_root)
    try:
        task = TaskMessage.from_wire(
            json.loads(claimed_path.read_text(encoding="ascii"))
        )
    except (TaskFormatError, ValueError, OSError):
        target = failed / claimed_path.name
        try:
            os.replace(claimed_path, target)
        except OSError:
            pass
        return False

    outcome = execute_task(task, scanners, stats=stats)
    atomic_write_text(
        results / f"{task.name}.json", json.dumps(outcome.to_wire())
    )
    try:
        claimed_path.unlink()
    except OSError:
        pass
    return True


class WorkQueueExecutor(Executor):
    """Distribute shard tasks through a shared queue directory.

    Parameters
    ----------
    queue_dir:
        The shared directory (created if missing).  Workers are started
        independently: ``repro-ids worker --queue <dir>`` on any host
        mounting it.
    poll_s:
        Coordinator sleep between collection sweeps when it has nothing
        to drain itself.
    timeout_s:
        Give up (``DetectorError``) when no new result has arrived for
        this long.  ``None`` waits forever — safe with
        ``coordinator_drains`` (progress is then guaranteed even with
        zero workers).
    coordinator_drains:
        When True (default) the coordinator claims and executes its own
        pending tasks while waiting, so workers accelerate a scan but
        are never required for one — including on failure: a worker's
        *error result* (missing mount on its host, transient IO fault)
        is retried locally instead of aborting the scan, and only a
        local failure (the capture really is bad) propagates.  With
        False, an error result raises immediately.
    stale_claim_s:
        The claim lease: claimed tasks older than this are re-posted
        for another worker (crash recovery).  The scan stays correct
        either way: duplicate results of a deterministic task are
        byte-identical, and the coordinator takes whichever arrives.
    orphan_ttl_s:
        At job start the coordinator sweeps ``results/`` and ``failed/``
        files older than this (leftovers of SIGKILLed coordinators or
        workers that finished after their job's cleanup), so a
        long-lived shared queue directory cannot leak files without
        bound.
    """

    def __init__(
        self,
        queue_dir: Union[str, Path],
        poll_s: float = 0.05,
        timeout_s: Optional[float] = None,
        coordinator_drains: bool = True,
        stale_claim_s: float = 300.0,
        orphan_ttl_s: float = 86400.0,
    ) -> None:
        self.queue_dir = Path(queue_dir)
        if poll_s <= 0 or stale_claim_s <= 0 or orphan_ttl_s <= 0:
            raise DetectorError(
                "poll_s, stale_claim_s and orphan_ttl_s must be positive"
            )
        self.poll_s = float(poll_s)
        self.timeout_s = timeout_s
        self.coordinator_drains = bool(coordinator_drains)
        self.stale_claim_s = float(stale_claim_s)
        self.orphan_ttl_s = float(orphan_ttl_s)

    # ------------------------------------------------------------------
    def _sweep_orphans(self) -> None:
        """Drop result/failed files no live job can still be collecting."""
        _, _, results, failed = queue_dirs(self.queue_dir)
        cutoff = time.time() - self.orphan_ttl_s
        for directory in (results, failed):
            for path in directory.glob("*.json*"):
                try:
                    if path.stat().st_mtime < cutoff:
                        path.unlink()
                except OSError:
                    continue  # another sweeper won, or the file is live

    def _post(self, spec: ScanSpec, paths: Sequence[str]) -> str:
        self._sweep_orphans()
        tasks, _, _, _ = queue_dirs(self.queue_dir)
        messages = make_tasks(
            spec, [str(Path(p).resolve()) for p in paths]
        )
        for task in messages:
            atomic_write_text(
                tasks / f"{task.name}.json", json.dumps(task.to_wire())
            )
        return messages[0].job

    def _repost_stale_claims(self, job: str) -> None:
        tasks, claimed, _, _ = queue_dirs(self.queue_dir)
        cutoff = time.time() - self.stale_claim_s
        for path in claimed.glob(f"{job}-*.json"):
            try:
                if path.stat().st_mtime > cutoff:
                    continue
                os.rename(path, tasks / path.name)
            except OSError:
                continue  # the worker finished (or another reposter won)

    def _cleanup(self, job: str) -> None:
        # failed/ is deliberately spared: when run() raises over a
        # quarantined task it points the operator at that directory, so
        # the evidence must outlive the job (the orphan TTL sweeps it).
        tasks, claimed, results, _ = queue_dirs(self.queue_dir)
        for d in (tasks, claimed, results):
            for path in d.glob(f"{job}-*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    def _read_outcome(
        self, path: Path, failed_dir: Path, job: str
    ) -> Optional[TaskResult]:
        """Decode one result file; quarantine corruption, never crash.

        A truncated or garbage result file (torn NFS write, disk fault)
        is moved to ``failed/<name>.corrupt`` as evidence and becomes a
        synthetic *error result* carrying the diagnostic — which the
        normal error rule then handles (local retry while draining, a
        clean ``DetectorError`` otherwise).  Returns None when the file
        name itself is unparseable (quarantined the same way; no index
        to synthesise an error for).
        """
        try:
            index = _index_of(path.name)
        except (ValueError, IndexError):
            index = None
        try:
            return TaskResult.from_wire(
                json.loads(path.read_text(encoding="ascii"))
            )
        except (TaskFormatError, ValueError, OSError) as exc:
            target = failed_dir / (path.name + ".corrupt")
            try:
                os.replace(path, target)
            except OSError:
                pass
            if index is None:
                return None
            return TaskResult(
                job,
                index,
                error=(
                    f"corrupt result file quarantined as {target}: {exc}"
                ),
            )

    def run(
        self, spec: ScanSpec, paths: Sequence[Union[str, Path]]
    ) -> List[list]:
        require_portable(spec)
        names = [str(p) for p in paths]
        if not names:
            return []
        job = self._post(spec, names)
        _, _, results_dir, failed_dir = queue_dirs(self.queue_dir)
        collector = ResultCollector(
            spec, names, job, local_retry=self.coordinator_drains
        )
        scanners: Dict[str, object] = {}
        last_progress = time.monotonic()
        try:
            while not collector.done:
                progressed = False
                for path in sorted(results_dir.glob(f"{job}-*.json")):
                    try:
                        if collector.collected(_index_of(path.name)):
                            continue
                    except (ValueError, IndexError):
                        pass
                    outcome = self._read_outcome(path, failed_dir, job)
                    if outcome is not None and collector.offer(outcome):
                        progressed = True
                quarantined = sorted(failed_dir.glob(f"{job}-*.json"))
                if quarantined:
                    # A worker could not even parse one of this job's
                    # task files (transient IO fault, protocol-version
                    # skew after a rolling upgrade).  No result will
                    # ever arrive for it, so waiting — even with
                    # coordinator draining — would hang; surface it.
                    raise DetectorError(
                        f"worker quarantined task(s) "
                        f"{', '.join(p.name for p in quarantined)} under "
                        f"{failed_dir}; check the queue's worker versions"
                    )
                if collector.done:
                    break
                if self.coordinator_drains:
                    claimed = claim_next_task(self.queue_dir, job)
                    if claimed is not None:
                        execute_claimed_task(claimed, scanners)
                        progressed = True
                if progressed:
                    last_progress = time.monotonic()
                    continue
                self._repost_stale_claims(job)
                if (
                    self.timeout_s is not None
                    and time.monotonic() - last_progress > self.timeout_s
                ):
                    outstanding = len(names) - collector.n_collected
                    raise DetectorError(
                        f"work queue {self.queue_dir} made no progress for "
                        f"{self.timeout_s:g}s with {outstanding}"
                        f" of {len(names)} tasks outstanding"
                    )
                time.sleep(self.poll_s)
        finally:
            self._cleanup(job)
        obs.emit(
            "fabric.job", job=job, transport="queue", tasks=len(names)
        )
        return collector.results()

    def describe(self) -> str:
        return f"queue({self.queue_dir})"

"""The long-running fleet watch daemon: ``repro-ids fleet watch``.

One-shot ``fleet scan`` calls answer "what is the fleet's state right
now?"; a deployment wants the question asked *continuously*.
:class:`WatchDaemon` is that loop, built so that every piece of real
work happens in code that already exists and is already parity-tested:

* each **cycle** compacts every vehicle's ledger
  (:meth:`ScanLedger.compact` — entries for rotated-out captures are
  dropped before they accumulate), runs the incremental
  :func:`~repro.fleet.drift.analyze_fleet` pass over the store (only
  new/changed captures pay for detection; any runtime executor
  backend), and emits one status line;
* a **drift alarm** closes the monitoring loop: the drifting vehicle is
  re-baselined through :func:`~repro.fleet.retrain.retrain_vehicle`
  (recent clean captures, attacked windows excluded, retrain event
  logged) and the ledger context hash cold-rescans it — and only it —
  on the next cycle;
* **idle cycles back off**: the polling interval doubles (configurable)
  up to a ceiling while nothing changes and snaps back to the base
  interval the moment a cycle finds work, so a quiet fleet costs almost
  nothing and a busy one is watched closely;
* **shutdown is graceful and crash-safe**: SIGTERM/SIGINT (when
  installed), a stop file, or ``max_cycles`` all stop the loop at the
  next safe point; and because every ledger/template write in the
  stack is atomic, even a SIGKILL mid-cycle leaves on-disk state a
  cold start replays bit-identically (asserted by
  ``tests/test_fleet_daemon.py``).
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro import obs
from repro.core.pipeline import IDSPipeline
from repro.io import blockcache
from repro.exceptions import TemplateError
from repro.io.atomic import atomic_write_text
from repro.fleet.drift import (
    DEFAULT_DRIFT_LIMIT,
    DEFAULT_DRIFT_SLACK,
    FleetReport,
)
from repro.fleet.retrain import retrain_vehicle, should_retrain
from repro.fleet.store import FleetStore

__all__ = ["CycleResult", "WatchDaemon", "STATUS_FILENAME"]

#: Per-cycle daemon status dropped (atomically) into the store root, so
#: ``repro-ids fleet status`` on any host sharing the store can report
#: the daemon's last cycle without talking to the daemon process.
STATUS_FILENAME = "watch-status.json"


@dataclass
class CycleResult:
    """What one daemon cycle observed and did."""

    index: int
    report: FleetReport
    #: Vehicles re-baselined this cycle (drift alarm + new clean data).
    retrained: List[str] = field(default_factory=list)
    #: Vehicles whose drift alarmed but retraining was skipped/failed.
    retrain_skipped: List[str] = field(default_factory=list)
    #: Ledger entries dropped by the pre-scan compaction.
    compacted: int = 0
    duration_s: float = 0.0

    @property
    def scanned(self) -> int:
        """Captures actually re-scanned this cycle."""
        return sum(len(w.scanned) for w in self.report.watch.values())

    @property
    def cached(self) -> int:
        """Captures answered from ledgers this cycle."""
        return sum(len(w.cached) for w in self.report.watch.values())

    @property
    def did_work(self) -> bool:
        """True when the cycle scanned, retrained or compacted anything."""
        return bool(self.scanned or self.retrained or self.compacted)

    def to_event(self) -> dict:
        """The structured ``fleet.cycle`` event this cycle *is*.

        This dict is the source of truth: :meth:`status_line` renders
        it, the telemetry layer emits it, and the daemon persists it to
        the store's status file — one schema, three consumers.
        """
        return {
            "cycle": self.index,
            "vehicles": len(self.report.vehicles),
            "scanned": self.scanned,
            "cached": self.cached,
            "alarmed": len(self.report.alarmed_vehicles),
            "drifting": len(self.report.drifting_vehicles),
            "compacted": self.compacted,
            "retrained": list(self.retrained),
            "retrain_skipped": list(self.retrain_skipped),
            "duration_s": round(self.duration_s, 6),
        }

    def status_line(self) -> str:
        """The daemon's one-line-per-cycle operator digest (a rendering
        of :meth:`to_event`)."""
        event = self.to_event()
        line = (
            f"cycle {event['cycle']}: {event['vehicles']} vehicles, "
            f"{event['scanned']} scanned, {event['cached']} cached, "
            f"{event['alarmed']} alarmed, "
            f"{event['drifting']} drifting"
        )
        if event["compacted"]:
            line += f", {event['compacted']} ledger entries pruned"
        if event["retrained"]:
            line += f", retrained {', '.join(event['retrained'])}"
        if event["retrain_skipped"]:
            line += (
                f", retrain skipped for {', '.join(event['retrain_skipped'])}"
            )
        return line + f" ({event['duration_s']:.2f}s)"


class WatchDaemon:
    """Poll a fleet store, scan incrementally, retrain on drift.

    Parameters
    ----------
    store, pipeline:
        As :meth:`IDSPipeline.analyze_fleet` — per-vehicle templates are
        preferred, the pipeline is the fallback/config carrier.
    interval_s / max_interval_s / backoff:
        Base polling interval, the ceiling it backs off towards while
        idle, and the multiplier per idle cycle.  Any cycle that does
        work resets the interval to ``interval_s``.
    retrain:
        Re-baseline drifting vehicles (on by default).  Retraining uses
        the pipeline's config and the vehicle's ``retrain_captures``
        most recent captures.
    retrain_captures:
        How many recent captures feed a re-baseline (``None``: all).
    stop_file:
        Path polled every cycle *and* during sleeps; its existence
        requests a graceful stop (the cross-host analogue of SIGTERM).
    executor / workers / infer_k / drift_slack / drift_limit / chunk_windows:
        Forwarded to :func:`~repro.fleet.drift.analyze_fleet`.
    log:
        Per-cycle status sink (``print`` for the CLI; tests capture).
    """

    def __init__(
        self,
        store: Union[FleetStore, str, Path],
        pipeline: IDSPipeline,
        interval_s: float = 30.0,
        max_interval_s: Optional[float] = None,
        backoff: float = 2.0,
        retrain: bool = True,
        retrain_captures: Optional[int] = None,
        stop_file: Union[str, Path, None] = None,
        executor=None,
        workers: Optional[int] = None,
        infer_k=1,
        drift_slack: float = DEFAULT_DRIFT_SLACK,
        drift_limit: float = DEFAULT_DRIFT_LIMIT,
        chunk_windows: Optional[int] = None,
        log: Optional[Callable[[str], None]] = print,
    ) -> None:
        self.store = store if isinstance(store, FleetStore) else FleetStore(store)
        self.pipeline = pipeline
        if interval_s <= 0 or backoff < 1.0:
            raise ValueError("interval_s must be > 0 and backoff >= 1")
        self.interval_s = float(interval_s)
        self.max_interval_s = (
            float(max_interval_s) if max_interval_s is not None
            else self.interval_s * 16
        )
        self.backoff = float(backoff)
        self.retrain = bool(retrain)
        self.retrain_captures = retrain_captures
        self.stop_file = Path(stop_file) if stop_file is not None else None
        self.executor = executor
        self.workers = workers
        self.infer_k = infer_k
        self.drift_slack = drift_slack
        self.drift_limit = drift_limit
        self.chunk_windows = chunk_windows
        self.log = log or (lambda line: None)
        self.cycles: List[CycleResult] = []
        self._stop_reason: Optional[str] = None
        self._previous_handlers: dict = {}
        self._current_interval = self.interval_s

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    @property
    def stop_reason(self) -> Optional[str]:
        """Why the daemon stopped (None while running)."""
        return self._stop_reason

    def request_stop(self, reason: str = "requested") -> None:
        """Ask the loop to exit at the next safe point (thread-safe)."""
        if self._stop_reason is None:
            self._stop_reason = reason

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT into :meth:`request_stop` (main thread).

        The previous dispositions are saved and restored when
        :meth:`run` returns: a daemon embedded in a larger process (the
        CLI test harness, a notebook) must not leave its handlers
        behind — most insidiously, a forked pool worker inheriting this
        handler would shrug off ``Pool.terminate()`` and hang the pool
        shutdown.
        """
        for sig in (signal.SIGTERM, signal.SIGINT):
            previous = signal.signal(
                sig,
                lambda signum, frame: self.request_stop(
                    signal.Signals(signum).name
                ),
            )
            self._previous_handlers.setdefault(sig, previous)

    def _restore_signal_handlers(self) -> None:
        while self._previous_handlers:
            sig, handler = self._previous_handlers.popitem()
            signal.signal(sig, handler)

    def _stop_requested(self) -> bool:
        if self._stop_reason is None and self.stop_file is not None:
            if self.stop_file.exists():
                self._stop_reason = f"stop file {self.stop_file}"
        return self._stop_reason is not None

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def run_cycle(self) -> CycleResult:
        """Run one compact + scan + retrain cycle and log its status."""
        start = time.perf_counter()
        compacted = sum(self.store.compact_ledgers().values())
        report = self.pipeline.analyze_fleet(
            self.store,
            workers=self.workers,
            infer_k=self.infer_k,
            executor=self.executor,
            drift_slack=self.drift_slack,
            drift_limit=self.drift_limit,
            chunk_windows=self.chunk_windows,
        )
        retrained: List[str] = []
        skipped: List[str] = []
        if self.retrain:
            for vehicle_id in report.drifting_vehicles:
                if not should_retrain(
                    self.store, vehicle_id, self.retrain_captures
                ):
                    skipped.append(vehicle_id)
                    continue
                try:
                    retrain_vehicle(
                        self.store,
                        vehicle_id,
                        self.pipeline.config,
                        max_captures=self.retrain_captures,
                        reason="drift",
                    )
                except TemplateError as exc:
                    # Not enough clean traffic to re-baseline (vehicle
                    # under sustained attack): keep the old template and
                    # surface the skip rather than training on poison.
                    skipped.append(vehicle_id)
                    self.log(f"retrain failed for {vehicle_id}: {exc}")
                else:
                    retrained.append(vehicle_id)
        cycle = CycleResult(
            index=len(self.cycles),
            report=report,
            retrained=retrained,
            retrain_skipped=skipped,
            compacted=compacted,
            duration_s=time.perf_counter() - start,
        )
        self.cycles.append(cycle)
        event = cycle.to_event()
        reg = obs.active()
        if reg is not None:
            reg.emit("fleet.cycle", **event)
            reg.counter("fleet.cycles").inc()
            reg.gauge("fleet.cycle_s").set(cycle.duration_s)
            reg.gauge("fleet.scanned").set(cycle.scanned)
            reg.gauge("fleet.ledger_hits").set(cycle.cached)
            reg.gauge("fleet.drifting").set(
                len(cycle.report.drifting_vehicles)
            )
            # Decoded-block cache occupancy: warm `.npb` rescans (drift
            # + rescan double passes) show up here, not as disk reads.
            block_cache = blockcache.default_cache().stats()
            reg.gauge("io.block_cache.bytes").set(block_cache["bytes"])
            reg.gauge("io.block_cache.hits").set(block_cache["hits"])
            reg.gauge("io.block_cache.misses").set(block_cache["misses"])
        self._write_status(event)
        self.log(cycle.status_line())
        return cycle

    def _write_status(self, event: dict) -> None:
        """Drop the cycle event (plus loop state) into the store root.

        Atomic, best-effort: status is advisory — a read-only store
        must not crash the daemon.  ``fleet status`` (and its
        ``--json`` stream) reads this file to report daemon liveness.
        """
        payload = {
            "v": obs.OBS_VERSION,
            "ts": time.time(),
            "pid": os.getpid(),
            "interval_s": self._current_interval,
            "cycle": event,
            "block_cache": blockcache.default_cache().stats(),
        }
        try:
            atomic_write_text(
                self.store.root / STATUS_FILENAME,
                json.dumps(payload, sort_keys=True),
            )
        except OSError:
            pass

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def _sleep(self, seconds: float) -> None:
        """Sleep in short slices so stop requests land promptly."""
        deadline = time.monotonic() + seconds
        while not self._stop_requested():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(0.1, remaining))

    def run(self, max_cycles: Optional[int] = None) -> List[CycleResult]:
        """Cycle until stopped; returns every cycle's result.

        ``max_cycles`` bounds the loop (tests, one-shot cron use);
        ``None`` runs until :meth:`request_stop`, a signal (after
        :meth:`install_signal_handlers`) or the stop file.
        """
        interval = self.interval_s
        try:
            while not self._stop_requested():
                cycle = self.run_cycle()
                if max_cycles is not None and len(self.cycles) >= max_cycles:
                    self._stop_reason = f"max cycles {max_cycles}"
                    break
                if cycle.did_work:
                    interval = self.interval_s
                else:
                    interval = min(interval * self.backoff, self.max_interval_s)
                self._current_interval = interval
                obs.emit(
                    "fleet.backoff",
                    cycle=cycle.index,
                    idle=not cycle.did_work,
                    interval_s=interval,
                )
                if self._stop_requested():
                    break
                prefix = "idle; " if not cycle.did_work else ""
                self.log(f"{prefix}next cycle in {interval:g}s")
                self._sleep(interval)
        finally:
            self._restore_signal_handlers()
        self.log(f"watch daemon stopped ({self._stop_reason})")
        return self.cycles

"""Executor backends: bit-identical reports across serial/pool/queue/net.

The runtime layer's acceptance bar: ``analyze_archive``, ``watch_scan``
and ``analyze_fleet`` must produce **bit-identical** reports under
:class:`SerialExecutor`, :class:`PoolExecutor`,
:class:`WorkQueueExecutor` and :class:`NetExecutor` at any worker
count.  (Multiprocess *perf* is never asserted — the container may
expose one CPU — only equality.)
"""

import threading

import pytest

from repro.attacks import SingleIDAttacker
from repro.baselines import FrequencyIDS
from repro.core import IDSPipeline, ShardedScanner
from repro.exceptions import DetectorError
from repro.fleet import FleetStore, watch_scan
from repro.io import CaptureArchive
from repro.runtime import (
    EntropyScanSpec,
    NetExecutor,
    PoolExecutor,
    SerialExecutor,
    ServerThread,
    WorkQueueExecutor,
    resolve_executor,
    run_net_worker,
    run_worker,
)
from repro.vehicle import VehicleSimulation
from repro.vehicle.traffic import record_template_windows, simulate_drive


def make_capture(catalog, seed, attacked=False, duration_s=6.0):
    if not attacked:
        return simulate_drive(duration_s, seed=seed, catalog=catalog)
    sim = VehicleSimulation(catalog=catalog, scenario="city", seed=seed)
    sim.add_node(
        SingleIDAttacker(
            can_id=catalog.ids[60], frequency_hz=100.0,
            start_s=1.0, duration_s=4.0, seed=seed,
        )
    )
    return sim.run(duration_s)


@pytest.fixture(scope="module")
def archive_dir(tmp_path_factory, catalog):
    """Four small captures, one attacked, mixed formats."""
    directory = tmp_path_factory.mktemp("runtime-archive")
    archive = CaptureArchive(directory)
    for i in range(4):
        archive.write_capture(
            f"cap{i}.{'csv' if i % 2 else 'log'}",
            make_capture(catalog, 50 + i, attacked=(i == 2)),
        )
    return directory


@pytest.fixture()
def pipeline(golden_template, ids_config, catalog):
    return IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)


@pytest.fixture(scope="module")
def coordinator():
    """One TCP scan coordinator shared by every net-backend run."""
    with ServerThread() as st:
        yield st


def executors_for(tmp_path, coordinator):
    return [
        SerialExecutor(),
        PoolExecutor(workers=1),
        PoolExecutor(workers=3),
        WorkQueueExecutor(tmp_path / "queue", timeout_s=120.0),
        NetExecutor(coordinator.address, timeout_s=120.0),
    ]


class TestArchiveParity:
    def test_analyze_archive_identical_across_backends(
        self, pipeline, archive_dir, tmp_path, coordinator
    ):
        """The acceptance criterion, on the cold scan path."""
        reference = pipeline.analyze_archive(archive_dir, workers=1)
        assert [p.name for p in reference.alarmed_captures] == ["cap2.log"]
        for executor in executors_for(tmp_path, coordinator):
            report = pipeline.analyze_archive(archive_dir, executor=executor)
            assert report.to_dict() == reference.to_dict(), executor.describe()

    def test_watch_scan_identical_across_backends(
        self, pipeline, archive_dir, tmp_path, coordinator
    ):
        """The acceptance criterion, on the incremental path: every
        backend feeds the same bytes into the same ledger protocol."""
        reference = pipeline.analyze_archive(archive_dir, workers=1)
        for i, executor in enumerate(executors_for(tmp_path, coordinator)):
            result = watch_scan(
                pipeline,
                archive_dir,
                tmp_path / f"ledger{i}.json",
                executor=executor,
            )
            assert len(result.scanned) == 4  # cold ledger: all fresh
            assert result.report.to_dict() == reference.to_dict()

    def test_analyze_fleet_identical_across_backends(
        self, pipeline, golden_template, ids_config, catalog, tmp_path,
        coordinator,
    ):
        """The acceptance criterion, fleet-wide."""
        store = FleetStore(tmp_path / "fleet")
        for v, vid in enumerate(("car-a", "car-b")):
            store.add_capture(
                vid, "d0.log", make_capture(catalog, 70 + v)
            )
            store.add_capture(
                vid, "d1.log", make_capture(catalog, 75 + v, attacked=(v == 1))
            )
            store.save_template(
                vid, golden_template, window_us=ids_config.window_us
            )
        reports = []
        for executor in executors_for(tmp_path, coordinator):
            # Fresh ledgers per backend: each run must be a cold scan.
            for vid in store.vehicles():
                if store.ledger_path(vid).is_file():
                    store.ledger_path(vid).unlink()
            report = pipeline.analyze_fleet(store, executor=executor)
            reports.append(
                {vid: v.to_dict() for vid, v in report.vehicles.items()}
            )
        assert all(r == reports[0] for r in reports[1:])
        assert reports[0]["car-b"]["alarmed_captures"] == ["d1.log"]

    def test_sharded_scanner_accepts_executor(
        self, golden_template, ids_config, archive_dir, tmp_path
    ):
        serial = ShardedScanner(
            golden_template, ids_config, workers=1
        ).scan_archive(CaptureArchive(archive_dir))
        queued = ShardedScanner(
            golden_template,
            ids_config,
            executor=WorkQueueExecutor(tmp_path / "q", timeout_s=120.0),
        ).scan_archive(CaptureArchive(archive_dir))
        assert [s.path for s in serial] == [s.path for s in queued]
        for a, b in zip(serial, queued):
            assert [w.to_dict() for w in a.windows] == [
                w.to_dict() for w in b.windows
            ]


class TestQueueWithRealWorkers:
    def test_background_workers_serve_the_scan(
        self, pipeline, archive_dir, tmp_path
    ):
        """With ``coordinator_drains=False`` the scan *only* completes if
        independent workers execute the tasks — the distributed path."""
        queue = tmp_path / "queue"
        threads = [
            threading.Thread(
                target=run_worker,
                kwargs=dict(
                    queue_dir=queue, poll_s=0.02, max_idle_s=30.0
                ),
                daemon=True,
            )
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        executor = WorkQueueExecutor(
            queue, coordinator_drains=False, timeout_s=120.0
        )
        report = pipeline.analyze_archive(archive_dir, executor=executor)
        (queue / "stop").touch()  # release the workers before joining
        for t in threads:
            t.join(timeout=60)
        reference = pipeline.analyze_archive(archive_dir, workers=1)
        assert report.to_dict() == reference.to_dict()


class TestNetWithRealWorkers:
    def test_network_workers_serve_the_scan(
        self, pipeline, archive_dir, coordinator
    ):
        """The network twin of the queue test above: ``drain=False``
        means completion proves the TCP workers executed every task."""
        threads = [
            threading.Thread(
                target=run_net_worker,
                kwargs=dict(
                    connect=coordinator.address, poll_s=0.02, max_idle_s=5.0
                ),
                daemon=True,
            )
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        executor = NetExecutor(
            coordinator.address, drain=False, timeout_s=120.0
        )
        report = pipeline.analyze_archive(archive_dir, executor=executor)
        reference = pipeline.analyze_archive(archive_dir, workers=1)
        assert report.to_dict() == reference.to_dict()
        # Idle the workers out rather than draining: the module-scoped
        # coordinator must survive for later net-backend runs.
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive()


class TestBackendSelection:
    def test_resolve_executor_names(self, tmp_path):
        assert resolve_executor(None) is None
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        pool = resolve_executor("pool", workers=3)
        assert isinstance(pool, PoolExecutor) and pool.workers == 3
        queue = resolve_executor("queue", queue_dir=tmp_path / "q")
        assert isinstance(queue, WorkQueueExecutor)
        assert queue.coordinator_drains and queue.timeout_s is None
        strict = resolve_executor(
            "queue", queue_dir=tmp_path / "q", queue_drain=False
        )
        # No self-drain means no progress guarantee: a timeout replaces
        # the wait-forever default so a worker-less queue errors out.
        assert not strict.coordinator_drains and strict.timeout_s is not None
        net = resolve_executor("net", connect="127.0.0.1:7341")
        assert isinstance(net, NetExecutor)
        assert net.drain and net.timeout_s is None
        strict_net = resolve_executor(
            "net", connect="127.0.0.1:7341", queue_drain=False
        )
        assert not strict_net.drain and strict_net.timeout_s is not None
        passthrough = SerialExecutor()
        assert resolve_executor(passthrough) is passthrough

    def test_resolve_executor_rejects_bad_input(self, tmp_path):
        with pytest.raises(DetectorError):
            resolve_executor("queue")  # no queue dir
        with pytest.raises(DetectorError):
            resolve_executor("net")  # no coordinator address
        with pytest.raises(DetectorError, match="serial, pool, queue or net"):
            resolve_executor("carrier-pigeon")

    def test_queue_rejects_baseline_specs(
        self, golden_template, ids_config, catalog, archive_dir, tmp_path
    ):
        """A fitted baseline object is picklable, not portable: the
        queue backend must refuse instead of half-working."""
        clean = record_template_windows(6, 2.0, seed=21, catalog=catalog)
        baseline = FrequencyIDS(window_us=ids_config.window_us).fit(clean)
        scanner = ShardedScanner(
            golden_template,
            ids_config,
            executor=WorkQueueExecutor(tmp_path / "q"),
        )
        with pytest.raises(DetectorError, match="work.queue"):
            scanner.scan_archive_baseline(baseline, CaptureArchive(archive_dir))

    def test_baseline_parity_serial_vs_pool(
        self, golden_template, ids_config, catalog, archive_dir
    ):
        clean = record_template_windows(6, 2.0, seed=21, catalog=catalog)
        baseline = FrequencyIDS(window_us=ids_config.window_us).fit(clean)
        archive = CaptureArchive(archive_dir)
        serial = ShardedScanner(
            golden_template, ids_config, executor=SerialExecutor()
        ).scan_archive_baseline(baseline, archive)
        pooled = ShardedScanner(
            golden_template, ids_config, executor=PoolExecutor(workers=2)
        ).scan_archive_baseline(baseline, archive)
        assert serial == pooled

    def test_entropy_spec_payload_round_trip(self, golden_template, ids_config):
        from repro.runtime import spec_from_payload

        spec = EntropyScanSpec(golden_template, ids_config)
        rebuilt = spec_from_payload(spec.to_payload())
        assert rebuilt.to_payload() == spec.to_payload()
        assert rebuilt.config.window_us == ids_config.window_us

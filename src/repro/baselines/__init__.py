"""Comparison intrusion detection systems.

Section V.E of the paper compares the bit-entropy IDS against two
representative systems; we implement both, plus two more for context:

* :class:`MuterEntropyIDS` — Muter & Asaj 2011 (the paper's ref [8]):
  Shannon entropy of the *whole identifier distribution* per window.
  Needs one counter per distinct identifier and cannot localise which
  identifier was injected.
* :class:`IntervalIDS` — Song, Kim & Kim 2016 (ref [11]): per-identifier
  inter-arrival-time monitoring.  Storage grows linearly with the
  catalog and, as the paper points out, it is blind to identifiers it
  never saw during training.
* :class:`ClockSkewIDS` — a simplified CIDS (Cho & Shin 2016, ref [9]):
  accumulated clock offset per identifier with a CUSUM test; requires
  offline fingerprinting and reacts slowly.
* :class:`FrequencyIDS` — naive total message-rate monitor, the weakest
  sensible baseline.

All baselines implement the :class:`BaselineIDS` protocol (``fit`` on
clean windows, ``scan`` a trace into per-window verdicts) so the
benchmark harness can run them interchangeably with the core IDS.
"""

from repro.baselines.base import BaselineIDS, BaselineVerdict
from repro.baselines.clock_skew import ClockSkewIDS
from repro.baselines.frequency_ids import FrequencyIDS
from repro.baselines.interval_ids import IntervalIDS
from repro.baselines.muter_entropy import MuterEntropyIDS

__all__ = [
    "BaselineIDS",
    "BaselineVerdict",
    "ClockSkewIDS",
    "FrequencyIDS",
    "IntervalIDS",
    "MuterEntropyIDS",
]

"""Ring-buffered frame batching for high-rate live buses.

The streaming detector's :meth:`~repro.core.detector.EntropyDetector.feed`
costs a few microseconds of interpreter work per frame — fine for one
vehicle bus, limiting for a gateway tapping several Mbit/s of traffic.
:class:`FrameRing` amortises that cost: a listener pushes raw frame
fields into preallocated column arrays (no ``TraceRecord`` allocation),
and whenever the ring fills (or on demand) the buffered span drains as
a :class:`~repro.io.columnar.ColumnTrace` chunk that
:meth:`EntropyDetector.feed_chunk <repro.core.detector.EntropyDetector.feed_chunk>`
judges in a handful of vectorised passes — emitting exactly the window
results the per-record path would have emitted.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import DetectorError
from repro.io.columnar import ColumnTrace
from repro.io.trace import TraceRecord

__all__ = ["FrameRing"]


class FrameRing:
    """Fixed-capacity structure-of-arrays buffer of live frames.

    Only the columns detection consumes are kept (timestamp,
    identifier, ground-truth attack label for evaluation runs); payload
    bytes of live frames are not buffered.
    """

    __slots__ = ("capacity", "_timestamp", "_can_id", "_is_attack", "_n", "_last")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise DetectorError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._timestamp = np.empty(capacity, dtype=np.int64)
        self._can_id = np.empty(capacity, dtype=np.int64)
        self._is_attack = np.empty(capacity, dtype=bool)
        self._n = 0
        self._last: Optional[int] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def is_full(self) -> bool:
        """True when the next push would not fit."""
        return self._n >= self.capacity

    # ------------------------------------------------------------------
    def push(self, timestamp_us: int, can_id: int, is_attack: bool = False) -> bool:
        """Buffer one frame; returns True when the ring is now full.

        Frames must arrive in non-decreasing timestamp order (what a
        single bus tap delivers); the caller drains a full ring before
        pushing more.
        """
        if self._n >= self.capacity:
            raise DetectorError("ring is full; drain() before pushing more")
        if self._last is not None and timestamp_us < self._last:
            raise DetectorError(
                f"frame at {timestamp_us}us pushed after {self._last}us; "
                f"push frames in time order"
            )
        n = self._n
        self._timestamp[n] = timestamp_us
        self._can_id[n] = can_id
        self._is_attack[n] = is_attack
        self._n = n + 1
        self._last = timestamp_us
        return self._n >= self.capacity

    def push_record(self, record: TraceRecord) -> bool:
        """Buffer one :class:`TraceRecord` (listener convenience)."""
        return self.push(record.timestamp_us, record.can_id, record.is_attack)

    # ------------------------------------------------------------------
    def drain(self) -> ColumnTrace:
        """Return the buffered frames as columns and reset the ring.

        The returned trace owns copies of the filled spans, so the ring
        can refill immediately while the chunk is being judged.
        """
        n = self._n
        chunk = ColumnTrace(
            self._timestamp[:n].copy(),
            self._can_id[:n].copy(),
            is_attack=self._is_attack[:n].copy(),
            validate=False,
        )
        self._n = 0
        return chunk

"""Transparent gzip support across the log IO layer.

Every reader must produce results identical to reading the
uncompressed twin; archives enumerate ``.gz`` captures next to plain
ones (the ROADMAP "richer archive formats" satellite).
"""

import gzip

import pytest

from repro.io import (
    CaptureArchive,
    iter_candump_columns,
    iter_csv_columns,
    read_candump,
    read_candump_columns,
    read_csv,
    read_csv_columns,
    write_candump,
    write_candump_columns,
    write_csv_columns,
)
from repro.io.archive import capture_suffix, load_capture_columns
from repro.vehicle.traffic import simulate_drive


@pytest.fixture(scope="module")
def drive(catalog):
    return simulate_drive(4.0, seed=17, catalog=catalog)


@pytest.fixture(scope="module")
def gz_pair(tmp_path_factory, drive):
    """The same capture as plain and externally-gzipped candump files."""
    directory = tmp_path_factory.mktemp("gz")
    plain = directory / "drive.log"
    write_candump(drive, plain)
    gzipped = directory / "drive.log.gz"
    gzipped.write_bytes(gzip.compress(plain.read_bytes()))
    return plain, gzipped


class TestCandumpGzip:
    def test_record_reader_identical(self, gz_pair):
        plain, gzipped = gz_pair
        assert read_candump(gzipped) == read_candump(plain)

    def test_columnar_reader_identical(self, gz_pair):
        plain, gzipped = gz_pair
        assert read_candump_columns(gzipped) == read_candump_columns(plain)

    def test_chunked_reader_identical(self, gz_pair):
        plain, gzipped = gz_pair
        plain_chunks = list(iter_candump_columns(plain, 500))
        gz_chunks = list(iter_candump_columns(gzipped, 500))
        assert len(plain_chunks) == len(gz_chunks) > 1
        for a, b in zip(plain_chunks, gz_chunks):
            assert a == b

    def test_write_read_round_trip(self, tmp_path, drive):
        columns = drive.to_columns()
        path = tmp_path / "out.log.gz"
        write_candump_columns(columns, path)
        # Actually compressed on disk (gzip magic), smaller than text.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert read_candump_columns(path) == columns


class TestCsvGzip:
    def test_round_trip_and_parity(self, tmp_path, drive):
        columns = drive.to_columns()
        plain = tmp_path / "out.csv"
        gzipped = tmp_path / "out.csv.gz"
        write_csv_columns(columns, plain)
        write_csv_columns(columns, gzipped)
        assert read_csv_columns(gzipped) == read_csv_columns(plain) == columns
        assert read_csv(gzipped) == read_csv(plain)
        assert [c for c in iter_csv_columns(gzipped, 300)] == [
            c for c in iter_csv_columns(plain, 300)
        ]


class TestArchiveGzip:
    def test_suffix_dispatch(self):
        assert capture_suffix("a.log") == ".log"
        assert capture_suffix("a.log.gz") == ".log"
        assert capture_suffix("a.csv.GZ") == ".csv"
        assert capture_suffix("a.CSV") == ".csv"

    def test_archive_enumerates_and_loads_gz(self, tmp_path, drive):
        columns = drive.to_columns()
        archive = CaptureArchive(tmp_path)
        archive.write_capture("a.log", columns)
        archive.write_capture("b.log.gz", columns)
        archive.write_capture("c.csv.gz", columns)
        names = [p.name for p in CaptureArchive(tmp_path).paths]
        assert names == ["a.log", "b.log.gz", "c.csv.gz"]
        for path in CaptureArchive(tmp_path).paths:
            assert load_capture_columns(path) == columns

    def test_plain_gz_twins_enumerate_once(self, tmp_path, drive, gz_pair):
        """`gzip -k` twins are ONE capture: enumerating both would
        double-count the drive in scans and pooled metrics."""
        import shutil

        plain, gzipped = gz_pair
        shutil.copy(plain, tmp_path / "drive.log")
        shutil.copy(gzipped, tmp_path / "drive.log.gz")
        archive = CaptureArchive(tmp_path)
        assert [p.name for p in archive.paths] == ["drive.log"]
        # And writing the twin of an indexed capture is refused.
        from repro.exceptions import TraceFormatError

        with pytest.raises(TraceFormatError, match="twin"):
            archive.write_capture("drive.log.gz", drive.to_columns())

    def test_iter_chunks_through_gz(self, tmp_path, drive):
        columns = drive.to_columns()
        archive = CaptureArchive(tmp_path)
        archive.write_capture("a.log.gz", columns)
        chunks = [c for _, c in archive.iter_chunks(400)]
        total = sum(len(c) for c in chunks)
        assert total == len(columns)

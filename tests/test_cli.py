"""The repro-ids command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_rejects_bad_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--id", "0x800", "--out", "x.log"])

    def test_rejects_bad_duration(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--duration", "-3", "--out", "x"])

    def test_parses_hex_and_decimal_ids(self):
        args = build_parser().parse_args(
            ["attack", "--id", "0x1A4", "--id", "420", "--out", "x.log"]
        )
        assert args.can_ids == [0x1A4, 420]


class TestWorkflow:
    """simulate -> template -> attack -> detect, through real files."""

    def test_simulate_writes_candump(self, tmp_path, capsys):
        out = tmp_path / "drive.log"
        assert main(["simulate", "--duration", "2", "--out", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_simulate_writes_csv(self, tmp_path):
        out = tmp_path / "drive.csv"
        assert main(["simulate", "--duration", "1", "--out", str(out)]) == 0
        header = out.read_text().splitlines()[0]
        assert header.startswith("time_us,")

    def test_full_detection_workflow(self, tmp_path, capsys):
        template_path = tmp_path / "template.json"
        attack_path = tmp_path / "attack.log"

        assert main(
            ["template", "--windows", "8", "--out", str(template_path)]
        ) == 0
        assert template_path.exists()

        assert main(
            [
                "attack", "--attack", "single", "--freq", "100",
                "--duration", "8", "--attack-duration", "5",
                "--out", str(attack_path),
            ]
        ) == 0

        code = main(
            ["detect", "--template", str(template_path),
             "--trace", str(attack_path), "--infer"]
        )
        assert code == 2  # exit 2 signals alarms
        out = capsys.readouterr().out
        assert "detection rate" in out
        assert "candidates" in out

    def test_detect_clean_trace_exits_zero(self, tmp_path, capsys):
        template_path = tmp_path / "template.json"
        drive_path = tmp_path / "drive.log"
        main(["template", "--windows", "8", "--out", str(template_path)])
        main(["simulate", "--duration", "6", "--out", str(drive_path)])
        assert main(
            ["detect", "--template", str(template_path), "--trace", str(drive_path)]
        ) == 0

    def test_attack_multi_defaults_two_ids(self, tmp_path, capsys):
        out = tmp_path / "attack.log"
        assert main(
            ["attack", "--attack", "multi", "--duration", "4",
             "--attack-duration", "2", "--out", str(out)]
        ) == 0
        assert "MultiIDAttacker" in capsys.readouterr().out


class TestScanArchive:
    """scan-archive: template + directory of captures -> sharded report."""

    def test_archive_workflow(self, tmp_path, capsys):
        template_path = tmp_path / "template.json"
        archive_dir = tmp_path / "captures"
        archive_dir.mkdir()
        assert main(["template", "--windows", "6", "--out", str(template_path)]) == 0
        for i, suffix in enumerate(["log", "csv"]):
            assert main(
                ["simulate", "--duration", "4", "--seed", str(10 + i),
                 "--out", str(archive_dir / f"drive{i}.{suffix}")]
            ) == 0
        capsys.readouterr()
        code = main(
            ["scan-archive", "--template", str(template_path),
             "--dir", str(archive_dir), "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert "archive: 2 captures" in out
        assert code in (0, 2)

    def test_empty_archive_dir_exits_one(self, tmp_path, capsys):
        template_path = tmp_path / "template.json"
        main(["template", "--windows", "6", "--out", str(template_path)])
        empty = tmp_path / "none"
        empty.mkdir()
        capsys.readouterr()
        assert main(
            ["scan-archive", "--template", str(template_path), "--dir", str(empty)]
        ) == 1
        assert "no captures" in capsys.readouterr().out


class TestOutOfCoreFlags:
    """--out-of-core / --chunk-windows: the chunked-scan plumbing."""

    def test_default_chunk_windows_mirrors_engine(self):
        # cli.py keeps the literal so building the parser never imports
        # numpy; this pin is what allows that.
        from repro import cli
        from repro.core import engine

        assert cli.DEFAULT_CHUNK_WINDOWS == engine.DEFAULT_CHUNK_WINDOWS

    def test_flag_resolution(self):
        from repro.cli import DEFAULT_CHUNK_WINDOWS, _cli_chunk_windows

        parser = build_parser()
        base = ["scan-archive", "--template", "t.json", "--dir", "d"]
        assert _cli_chunk_windows(parser.parse_args(base)) is None
        assert (
            _cli_chunk_windows(parser.parse_args(base + ["--out-of-core"]))
            == DEFAULT_CHUNK_WINDOWS
        )
        # --chunk-windows implies --out-of-core and overrides the default.
        assert _cli_chunk_windows(
            parser.parse_args(base + ["--chunk-windows", "9"])
        ) == 9
        with pytest.raises(SystemExit):
            _cli_chunk_windows(
                parser.parse_args(base + ["--chunk-windows", "0"])
            )

    def test_out_of_core_archive_scan_matches_in_ram(self, tmp_path, capsys):
        template_path = tmp_path / "template.json"
        archive_dir = tmp_path / "captures"
        archive_dir.mkdir()
        assert main(["template", "--windows", "6", "--out", str(template_path)]) == 0
        assert main(
            ["simulate", "--duration", "4", "--seed", "10",
             "--out", str(archive_dir / "drive.npz")]
        ) == 0
        capsys.readouterr()
        base = ["scan-archive", "--template", str(template_path),
                "--dir", str(archive_dir)]
        in_ram_code = main(base)
        in_ram_out = capsys.readouterr().out
        ooc_code = main(base + ["--out-of-core", "--chunk-windows", "2"])
        ooc_out = capsys.readouterr().out
        assert ooc_code == in_ram_code
        assert ooc_out == in_ram_out  # same rendered report, bit for bit


class TestConvert:
    """convert: any capture -> the block-compressed .npb container."""

    def test_convert_and_detect_round_trip(self, tmp_path, capsys):
        log_path = tmp_path / "drive.log"
        npb_path = tmp_path / "drive.npb"
        template_path = tmp_path / "template.json"
        assert main(["template", "--windows", "6", "--out", str(template_path)]) == 0
        assert main(
            ["simulate", "--duration", "4", "--seed", "11", "--out", str(log_path)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["convert", "--trace", str(log_path), "--out", str(npb_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "frames" in out
        assert npb_path.exists()

        from repro.io import load_capture_columns

        assert load_capture_columns(npb_path) == load_capture_columns(log_path)

        # The container must detect identically to the text capture.
        code_log = main(
            ["detect", "--template", str(template_path), "--trace", str(log_path)]
        )
        out_log = capsys.readouterr().out
        code_npb = main(
            ["detect", "--template", str(template_path), "--trace", str(npb_path)]
        )
        out_npb = capsys.readouterr().out
        assert code_npb == code_log
        assert out_npb == out_log

    def test_out_must_be_npb(self, tmp_path, capsys):
        log_path = tmp_path / "drive.log"
        assert main(
            ["simulate", "--duration", "2", "--out", str(log_path)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["convert", "--trace", str(log_path), "--out", str(tmp_path / "x.npz")]
        ) == 1
        assert ".npb" in capsys.readouterr().out

    def test_batch_convert_with_flush_boundaries(self, tmp_path, capsys):
        """Several --trace flags land in one container, each capture
        starting on a fresh block; the result matches the captures
        played back to back."""
        from repro.io import (
            BlockReader,
            load_capture_columns,
            write_candump_columns,
        )

        whole_log = tmp_path / "whole.log"
        assert main(["simulate", "--duration", "4", "--seed", "5",
                     "--out", str(whole_log)]) == 0
        capsys.readouterr()
        whole = load_capture_columns(whole_log)
        cut = len(whole) // 2
        a = tmp_path / "a.log"
        b = tmp_path / "b.log"
        write_candump_columns(whole.slice(0, cut), a)
        write_candump_columns(whole.slice(cut, len(whole)), b)

        npb = tmp_path / "fleet.npb"
        assert main(
            ["convert", "--trace", str(a), "--trace", str(b),
             "--out", str(npb), "--block-frames", "500"]
        ) == 0
        assert load_capture_columns(npb) == whole
        with BlockReader(npb, cache=False) as reader:
            rows = [int(blk["rows"]) for blk in reader.blocks]
        # The first capture's tail is drained before b starts.
        boundary = (cut // 500) + (1 if cut % 500 else 0)
        assert sum(rows[:boundary]) == cut

    def test_convert_codec_override_and_version(self, tmp_path, capsys):
        from repro.io import BlockReader, load_capture_columns

        log = tmp_path / "drive.log"
        assert main(["simulate", "--duration", "2", "--out", str(log)]) == 0
        capsys.readouterr()

        forced = tmp_path / "forced.npb"
        assert main(
            ["convert", "--trace", str(log), "--out", str(forced),
             "--codec", "timestamp_us=shuffle,can_id=raw"]
        ) == 0
        with BlockReader(forced, cache=False) as reader:
            assert reader.codecs["timestamp_us"] == "shuffle"
            assert reader.codecs["can_id"] == "raw"

        legacy = tmp_path / "legacy.npb"
        assert main(
            ["convert", "--trace", str(log), "--out", str(legacy),
             "--format-version", "1"]
        ) == 0
        with BlockReader(legacy, cache=False) as reader:
            assert reader.version == 1
        assert load_capture_columns(legacy) == load_capture_columns(forced)

    def test_convert_rejects_bad_codec_spec(self, tmp_path, capsys):
        log = tmp_path / "drive.log"
        assert main(["simulate", "--duration", "1", "--out", str(log)]) == 0
        capsys.readouterr()
        assert main(
            ["convert", "--trace", str(log),
             "--out", str(tmp_path / "x.npb"), "--codec", "garbage"]
        ) == 1
        assert "COLUMN=CODEC" in capsys.readouterr().out
        assert main(
            ["convert", "--trace", str(log),
             "--out", str(tmp_path / "y.npb"), "--codec", "can_id=zstd"]
        ) == 1
        assert "unknown codec" in capsys.readouterr().out


class TestInspect:
    """inspect: the per-column codec/size report over a container."""

    @pytest.fixture()
    def npb(self, tmp_path, capsys):
        log = tmp_path / "drive.log"
        npb = tmp_path / "drive.npb"
        assert main(["simulate", "--duration", "3", "--out", str(log)]) == 0
        assert main(
            ["convert", "--trace", str(log), "--out", str(npb),
             "--block-frames", "400"]
        ) == 0
        capsys.readouterr()
        return npb

    def test_text_report(self, npb, capsys):
        assert main(["inspect", str(npb)]) == 0
        out = capsys.readouterr().out
        assert "repro-blocks v2" in out
        assert "timestamp_us" in out and "delta" in out
        assert "can_id" in out and "dict" in out

    def test_json_report(self, npb, capsys):
        import json as _json

        assert main(["inspect", str(npb), "--json"]) == 0
        info = _json.loads(capsys.readouterr().out)
        assert info["version"] == 2
        assert info["columns"]["timestamp_us"]["codec"] == "delta"
        assert info["ratio"] > 1.0
        assert info["file_bytes"] > 0

    def test_not_a_container(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.npb"
        bogus.write_bytes(b"not a container")
        assert main(["inspect", str(bogus)]) == 1
        assert "not a block-compressed trace" in capsys.readouterr().out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "nope.npb")]) == 1

    def test_scan_archive_hints_convert_for_compressed_npz(
        self, tmp_path, capsys
    ):
        """--out-of-core over a compressed npz must point at convert
        instead of silently falling back to an eager load."""
        from repro.io import load_capture_columns

        template_path = tmp_path / "template.json"
        archive_dir = tmp_path / "captures"
        archive_dir.mkdir()
        log_path = tmp_path / "drive.log"
        assert main(["template", "--windows", "6", "--out", str(template_path)]) == 0
        assert main(
            ["simulate", "--duration", "3", "--out", str(log_path)]
        ) == 0
        load_capture_columns(log_path).save_npz(
            archive_dir / "drive.npz", compressed=True
        )
        capsys.readouterr()
        base = ["scan-archive", "--template", str(template_path),
                "--dir", str(archive_dir)]
        assert main(base + ["--out-of-core"]) == 1
        out = capsys.readouterr().out
        assert "repro-ids convert" in out
        # Without the flag the eager path still scans it.
        assert main(base) in (0, 2)


class TestFleet:
    """fleet add -> train -> scan -> (append) -> scan -> status/report."""

    def test_full_fleet_workflow(self, tmp_path, capsys):
        store = tmp_path / "fleet"
        traces = tmp_path / "traces"
        traces.mkdir()
        # Two vehicles, two clean drives each.
        for v, vid in enumerate(("car-a", "car-b")):
            for i in range(2):
                path = traces / f"{vid}-d{i}.log"
                assert main(
                    ["simulate", "--duration", "5", "--seed", str(20 + 10 * v + i),
                     "--out", str(path)]
                ) == 0
                assert main(
                    ["fleet", "add", "--store", str(store), "--vehicle", vid,
                     "--trace", str(path), "--name", f"d{i}.log"]
                ) == 0
            assert main(
                ["fleet", "train", "--store", str(store), "--vehicle", vid]
            ) == 0
        capsys.readouterr()

        # First scan is cold and clean.
        assert main(["fleet", "scan", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "2 scanned, 0 cached" in out

        # Append an attack capture to one vehicle; only it re-scans.
        attack = traces / "attack.log"
        assert main(
            ["attack", "--attack", "single", "--freq", "100", "--duration", "8",
             "--attack-duration", "5", "--out", str(attack)]
        ) == 0
        assert main(
            ["fleet", "add", "--store", str(store), "--vehicle", "car-b",
             "--trace", str(attack)]
        ) == 0
        capsys.readouterr()
        assert main(["fleet", "scan", "--store", str(store)]) == 2
        out = capsys.readouterr().out
        assert "car-a: 2 captures: 0 scanned, 2 cached" in out
        assert "car-b: 3 captures: 1 scanned, 2 cached" in out
        assert "alarmed vehicles: car-b" in out

        # Status and report (the acceptance-criterion aggregation:
        # 2 vehicles x >= 2 captures with drift series + pooled metrics).
        assert main(["fleet", "status", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "car-a: 2 captures, template=yes" in out
        assert "ledger entries=2" in out

        report_path = tmp_path / "fleet-report.txt"
        json_path = tmp_path / "fleet-report.json"
        assert main(
            ["fleet", "report", "--store", str(store),
             "--out", str(report_path), "--json", str(json_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "fleet: 2 vehicles, 5 captures, 1 alarmed" in out
        assert "pooled Dr=" in out and "drift" in out
        assert report_path.read_text().startswith("car-a:")
        import json

        payload = json.loads(json_path.read_text())
        assert payload["pooled"]["n_vehicles"] == 2
        assert payload["vehicles"]["car-b"]["detection_rate"] > 0.5
        assert len(payload["vehicles"]["car-a"]["drift"]["deviations"]) == 2

    def test_window_mismatch_refused(self, tmp_path, capsys):
        """Scanning at a different window than training must error,
        not silently judge with shifted entropy baselines."""
        store = tmp_path / "fleet"
        trace = tmp_path / "d.log"
        main(["simulate", "--duration", "6", "--out", str(trace)])
        main(["fleet", "add", "--store", str(store), "--vehicle", "car-a",
              "--trace", str(trace)])
        main(["fleet", "train", "--store", str(store), "--vehicle", "car-a",
              "--window-s", "1.0"])
        capsys.readouterr()
        # Explicit mismatching window: refused.
        assert main(
            ["fleet", "scan", "--store", str(store), "--window-s", "2.0"]
        ) == 1
        assert "does not match training" in capsys.readouterr().out
        # No flag: the recorded training window is used automatically.
        assert main(["fleet", "scan", "--store", str(store)]) in (0, 2)

    def test_status_on_missing_store_exits_one(self, tmp_path, capsys):
        missing = tmp_path / "typo"
        assert main(["fleet", "status", "--store", str(missing)]) == 1
        assert "no fleet store" in capsys.readouterr().out
        assert not missing.exists()  # read-only command left no litter

    def test_scan_on_missing_store_exits_one_even_with_template(
        self, tmp_path, capsys
    ):
        """A typo'd --store must never report an all-clean fleet."""
        template_path = tmp_path / "t.json"
        main(["template", "--windows", "6", "--out", str(template_path)])
        missing = tmp_path / "typo"
        capsys.readouterr()
        assert main(
            ["fleet", "scan", "--store", str(missing),
             "--template", str(template_path)]
        ) == 1
        assert "no fleet store" in capsys.readouterr().out
        assert not missing.exists()

    def test_corrupt_template_diagnosed_not_traceback(self, tmp_path, capsys):
        store = tmp_path / "fleet"
        trace = tmp_path / "d.log"
        main(["simulate", "--duration", "5", "--out", str(trace)])
        main(["fleet", "add", "--store", str(store), "--vehicle", "car-a",
              "--trace", str(trace)])
        main(["fleet", "train", "--store", str(store), "--vehicle", "car-a"])
        (store / "vehicles" / "car-a" / "template.json").write_text("{ torn")
        capsys.readouterr()
        assert main(["fleet", "scan", "--store", str(store)]) == 1
        assert "corrupt" in capsys.readouterr().out

    def test_status_reports_corrupt_ledger_instead_of_crashing(
        self, tmp_path, capsys
    ):
        store = tmp_path / "fleet"
        trace = tmp_path / "d.log"
        main(["simulate", "--duration", "4", "--out", str(trace)])
        main(["fleet", "add", "--store", str(store), "--vehicle", "car-a",
              "--trace", str(trace)])
        # Scalar JSON root: parses fine, is structurally garbage.
        (store / "vehicles" / "car-a" / "ledger.json").write_text("null")
        capsys.readouterr()
        assert main(["fleet", "status", "--store", str(store)]) == 0
        assert "ledger entries=corrupt" in capsys.readouterr().out

    def test_status_json_streams_machine_readable_vehicles(
        self, tmp_path, capsys
    ):
        """--json: one JSON object per vehicle (the dashboard hook),
        carrying the same facts as the human lines."""
        import json

        store = tmp_path / "fleet"
        trace = tmp_path / "d.log"
        main(["simulate", "--duration", "5", "--out", str(trace)])
        for vehicle in ("car-a", "car-b"):
            main(["fleet", "add", "--store", str(store),
                  "--vehicle", vehicle, "--trace", str(trace)])
        main(["fleet", "train", "--store", str(store), "--vehicle", "car-a"])
        capsys.readouterr()
        assert main(
            ["fleet", "status", "--store", str(store), "--json"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        rows = [json.loads(line) for line in lines]
        assert [r["vehicle"] for r in rows] == ["car-a", "car-b"]
        by_vehicle = {r["vehicle"]: r for r in rows}
        assert by_vehicle["car-a"]["template"] is True
        assert by_vehicle["car-b"]["template"] is False
        assert by_vehicle["car-a"]["captures"] == 1
        assert by_vehicle["car-a"]["ledger"] == "missing"
        assert by_vehicle["car-a"]["ledger_entries"] is None

    def test_status_json_reports_ledger_entries_after_scan(
        self, tmp_path, capsys
    ):
        import json

        store = tmp_path / "fleet"
        trace = tmp_path / "d.log"
        main(["simulate", "--duration", "5", "--out", str(trace)])
        main(["fleet", "add", "--store", str(store), "--vehicle", "car-a",
              "--trace", str(trace)])
        main(["fleet", "train", "--store", str(store), "--vehicle", "car-a"])
        assert main(["fleet", "scan", "--store", str(store)]) in (0, 2)
        capsys.readouterr()
        assert main(
            ["fleet", "status", "--store", str(store), "--json"]
        ) == 0
        rows = [json.loads(line)
                for line in capsys.readouterr().out.strip().splitlines()]
        assert rows[0]["ledger"] == "ok"
        assert rows[0]["ledger_entries"] == 1

    def test_train_without_captures_exits_one(self, tmp_path, capsys):
        store = tmp_path / "fleet"
        assert main(
            ["fleet", "train", "--store", str(store), "--vehicle", "car-x"]
        ) == 1
        assert "no captures" in capsys.readouterr().out

    def test_scan_without_any_template_exits_one(self, tmp_path, capsys):
        store = tmp_path / "fleet"
        trace = tmp_path / "d.log"
        main(["simulate", "--duration", "4", "--out", str(trace)])
        main(["fleet", "add", "--store", str(store), "--vehicle", "car-a",
              "--trace", str(trace)])
        capsys.readouterr()
        assert main(["fleet", "scan", "--store", str(store)]) == 1
        assert "no template for vehicle(s) car-a" in capsys.readouterr().out

    def test_untemplated_vehicle_errors_instead_of_borrowing(
        self, tmp_path, capsys
    ):
        """A vehicle without its own template must not be silently
        judged against another vehicle's baseline."""
        store = tmp_path / "fleet"
        trace = tmp_path / "d.log"
        main(["simulate", "--duration", "5", "--out", str(trace)])
        for vid in ("car-a", "car-z"):
            main(["fleet", "add", "--store", str(store), "--vehicle", vid,
                  "--trace", str(trace)])
        main(["fleet", "train", "--store", str(store), "--vehicle", "car-a"])
        capsys.readouterr()
        assert main(["fleet", "scan", "--store", str(store)]) == 1
        out = capsys.readouterr().out
        assert "no template for vehicle(s) car-z" in out
        # An explicit fallback makes the same scan legitimate.
        template_path = tmp_path / "fallback.json"
        main(["template", "--windows", "6", "--out", str(template_path)])
        capsys.readouterr()
        assert main(
            ["fleet", "scan", "--store", str(store),
             "--template", str(template_path)]
        ) in (0, 2)

    def test_train_excludes_attacked_windows(self, tmp_path, capsys):
        """Training data is cleaned by ground truth: attacked windows
        must not inflate the template's entropy ranges."""
        store = tmp_path / "fleet"
        clean = tmp_path / "clean.log"
        attack = tmp_path / "attack.log"
        main(["simulate", "--duration", "6", "--seed", "21", "--out", str(clean)])
        main(["attack", "--attack", "single", "--freq", "100", "--duration", "8",
              "--attack-duration", "6", "--seed", "21", "--out", str(attack)])
        main(["fleet", "add", "--store", str(store), "--vehicle", "car-a",
              "--trace", str(clean)])
        main(["fleet", "add", "--store", str(store), "--vehicle", "car-a",
              "--trace", str(attack)])
        capsys.readouterr()
        assert main(
            ["fleet", "train", "--store", str(store), "--vehicle", "car-a"]
        ) == 0
        out = capsys.readouterr().out
        assert "attacked windows excluded" in out
        # The attack capture is 8s long with ~6s attacked: at least two
        # of its windows must have been dropped.
        import re

        excluded = int(re.search(r"\((\d+) attacked windows excluded\)", out).group(1))
        assert excluded >= 2


class TestRuntimeCli:
    """--executor plumbing, the worker command, watch and prune."""

    def build_archive(self, tmp_path):
        template_path = tmp_path / "template.json"
        archive_dir = tmp_path / "captures"
        archive_dir.mkdir()
        main(["template", "--windows", "6", "--out", str(template_path)])
        main(["simulate", "--duration", "4", "--seed", "11",
              "--out", str(archive_dir / "d0.log")])
        main(["attack", "--attack", "single", "--duration", "6", "--seed", "13",
              "--out", str(archive_dir / "a0.log")])
        return template_path, archive_dir

    def test_scan_archive_queue_equals_serial(self, tmp_path, capsys):
        """The distributed-smoke assertion, in-process: a queue scan
        (coordinator-drained) writes the same JSON report as serial."""
        template_path, archive_dir = self.build_archive(tmp_path)
        serial_json = tmp_path / "serial.json"
        queue_json = tmp_path / "queue.json"
        capsys.readouterr()
        assert main(
            ["scan-archive", "--template", str(template_path),
             "--dir", str(archive_dir), "--executor", "serial",
             "--json", str(serial_json)]
        ) == 2  # the attack capture alarms
        assert main(
            ["scan-archive", "--template", str(template_path),
             "--dir", str(archive_dir), "--executor", "queue",
             "--queue-dir", str(tmp_path / "q"), "--json", str(queue_json)]
        ) == 2
        assert serial_json.read_text() == queue_json.read_text()

    def test_queue_without_dir_diagnosed(self, tmp_path, capsys):
        template_path, archive_dir = self.build_archive(tmp_path)
        capsys.readouterr()
        assert main(
            ["scan-archive", "--template", str(template_path),
             "--dir", str(archive_dir), "--executor", "queue"]
        ) == 1
        assert "queue directory" in capsys.readouterr().out

    def test_worker_drains_posted_tasks(self, tmp_path, capsys):
        """Post tasks by hand, then let the worker command drain them."""
        from repro.core import GoldenTemplate, IDSConfig
        from repro.runtime import EntropyScanSpec, WorkQueueExecutor

        template_path, archive_dir = self.build_archive(tmp_path)
        queue = tmp_path / "q"
        template = GoldenTemplate.load(template_path)
        spec = EntropyScanSpec(template, IDSConfig(alpha=template.alpha))
        WorkQueueExecutor(queue)._post(spec, [str(archive_dir / "d0.log")])
        capsys.readouterr()
        assert main(
            ["worker", "--queue", str(queue), "--max-tasks", "1",
             "--poll", "0.01"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 tasks executed" in out
        assert list((queue / "results").glob("*.json"))  # result uploaded

    def test_worker_stop_file(self, tmp_path, capsys):
        queue = tmp_path / "q"
        queue.mkdir()
        (queue / "stop").touch()
        assert main(["worker", "--queue", str(queue), "--poll", "0.01"]) == 0
        assert "stop file" in capsys.readouterr().out

    def build_store(self, tmp_path):
        store = tmp_path / "fleet"
        trace = tmp_path / "d.log"
        main(["simulate", "--duration", "5", "--seed", "31", "--out", str(trace)])
        main(["fleet", "add", "--store", str(store), "--vehicle", "car-a",
              "--trace", str(trace)])
        main(["fleet", "train", "--store", str(store), "--vehicle", "car-a"])
        return store

    def test_scan_archive_net_equals_serial(self, tmp_path, capsys):
        """The network fabric through the CLI flags: an --executor net
        scan (self-draining coordinator, no workers) must produce the
        byte-identical JSON report."""
        from repro.runtime import ServerThread

        template_path, archive_dir = self.build_archive(tmp_path)
        serial_json = tmp_path / "serial.json"
        net_json = tmp_path / "net.json"
        assert main(
            ["scan-archive", "--template", str(template_path),
             "--dir", str(archive_dir), "--executor", "serial",
             "--json", str(serial_json)]
        ) == 2
        with ServerThread() as st:
            assert main(
                ["scan-archive", "--template", str(template_path),
                 "--dir", str(archive_dir), "--executor", "net",
                 "--connect", st.address, "--json", str(net_json)]
            ) == 2
        assert serial_json.read_text() == net_json.read_text()

    def test_net_without_connect_diagnosed(self, tmp_path, capsys):
        template_path, archive_dir = self.build_archive(tmp_path)
        capsys.readouterr()
        assert main(
            ["scan-archive", "--template", str(template_path),
             "--dir", str(archive_dir), "--executor", "net"]
        ) == 1
        assert "coordinator address" in capsys.readouterr().out

    def test_executor_flag_mismatches_exit_cleanly(self, tmp_path):
        """A transport flag aimed at the wrong backend is a config
        error: clear SystemExit message, never a traceback."""
        template_path, archive_dir = self.build_archive(tmp_path)
        base = ["scan-archive", "--template", str(template_path),
                "--dir", str(archive_dir)]
        with pytest.raises(SystemExit, match="--queue-dir only applies"):
            main(base + ["--executor", "serial",
                         "--queue-dir", str(tmp_path / "q")])
        with pytest.raises(SystemExit, match="--connect only applies"):
            main(base + ["--executor", "queue",
                         "--queue-dir", str(tmp_path / "q"),
                         "--connect", "localhost:7341"])
        with pytest.raises(SystemExit, match="--no-drain only applies"):
            main(base + ["--executor", "serial", "--no-drain"])
        # The same guard protects the fleet entry points.
        store = self.build_store(tmp_path)
        with pytest.raises(SystemExit, match="--connect only applies"):
            main(["fleet", "scan", "--store", str(store),
                  "--connect", "localhost:7341"])

    def test_worker_requires_exactly_one_fabric(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one fabric"):
            main(["worker"])
        with pytest.raises(SystemExit, match="exactly one fabric"):
            main(["worker", "--queue", str(tmp_path / "q"),
                  "--connect", "localhost:7341"])
        with pytest.raises(SystemExit, match="--stop-file only applies"):
            main(["worker", "--connect", "localhost:7341",
                  "--stop-file", str(tmp_path / "stop")])

    def test_fleet_watch_bounded_cycles(self, tmp_path, capsys):
        import signal

        store = self.build_store(tmp_path)
        capsys.readouterr()
        before = {
            sig: signal.getsignal(sig)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        assert main(
            ["fleet", "watch", "--store", str(store), "--interval", "0.01",
             "--cycles", "2", "--workers", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "cycle 0: 1 vehicles, 1 scanned, 0 cached" in out
        assert "cycle 1: 1 vehicles, 0 scanned, 1 cached" in out
        assert "watch daemon stopped (max cycles 2)" in out
        # The daemon's handlers must not outlive it: a leaked SIGTERM
        # handler would be inherited by later forked pool workers, which
        # would then ignore Pool.terminate() and hang the pool shutdown.
        for sig, handler in before.items():
            assert signal.getsignal(sig) is handler

    def test_fleet_prune_drops_departed_captures(self, tmp_path, capsys):
        store = self.build_store(tmp_path)
        assert main(["fleet", "scan", "--store", str(store)]) == 0
        # Rotate the capture out from under the ledger.
        capture = store / "vehicles" / "car-a" / "captures"
        for path in capture.iterdir():
            path.unlink()
        capsys.readouterr()
        assert main(["fleet", "prune", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "car-a: pruned 1 stale ledger entries" in out
        assert "pruned 1 entries across 1 vehicles" in out

    def test_fleet_prune_missing_store(self, tmp_path, capsys):
        assert main(["fleet", "prune", "--store", str(tmp_path / "typo")]) == 1
        assert "no fleet store" in capsys.readouterr().out

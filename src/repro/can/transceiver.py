"""The transceiver zero-overload guard.

Section III of the paper: flooding "is usually deployed by injecting CAN
messages containing the most dominant identifier, i.e. 0x00.  However,
the CAN transceivers have the detection mechanism for zero overloads on
CAN bus ... it will automatically shut down the transmission".  The
efficient flooding strategy is therefore *changeable* high-priority IDs.

:class:`TransceiverGuard` reproduces that mechanism: a node that puts
more than ``limit`` consecutive frames with a fully-dominant arbitration
field (base-format identifier 0x000, dominant RTR) on the bus is shut
down.  Flooding attackers that rotate identifiers never trip it — which
is exactly why the entropy IDS is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.can.frame import CANFrame
from repro.exceptions import BusConfigError


@dataclass(frozen=True)
class TransceiverEvent:
    """A guard shutdown decision."""

    timestamp_us: int
    node: str
    consecutive_dominant: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.timestamp_us}us] transceiver guard shut down {self.node} "
            f"after {self.consecutive_dominant} consecutive all-dominant frames"
        )


class TransceiverGuard:
    """Per-node monitor for zero-overload (all-dominant) transmissions."""

    def __init__(self, limit: int = 5) -> None:
        if limit < 1:
            raise BusConfigError(f"guard limit must be >= 1, got {limit}")
        self.limit = limit
        self._streak: Dict[str, int] = {}

    @staticmethod
    def _is_all_dominant(frame: CANFrame) -> bool:
        # Base-format data frame with identifier 0: SOF, all 11 ID bits,
        # RTR and IDE are all dominant.  Extended frames always carry the
        # recessive SRR/IDE pair, remote frames a recessive RTR.
        return frame.can_id == 0 and not frame.extended and not frame.rtr

    def observe(self, node: str, frame: CANFrame, t_us: int) -> Optional[TransceiverEvent]:
        """Account one transmitted frame; return a shutdown event if due.

        The caller (the bus) is responsible for actually disabling the
        node when an event is returned.
        """
        if self._is_all_dominant(frame):
            streak = self._streak.get(node, 0) + 1
            self._streak[node] = streak
            if streak >= self.limit:
                self._streak[node] = 0
                return TransceiverEvent(
                    timestamp_us=t_us, node=node, consecutive_dominant=streak
                )
        else:
            self._streak[node] = 0
        return None

    def reset(self, node: Optional[str] = None) -> None:
        """Clear streak state for one node or for all nodes."""
        if node is None:
            self._streak.clear()
        else:
            self._streak.pop(node, None)

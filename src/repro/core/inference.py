"""Malicious-ID inference (Section V.C of the paper).

The direction of each bit's probability shift betrays the injected
identifier: "if the bit entropy changes in the negative direction ...
the corresponding bit of the injected ID will be probably 0".  The paper
then applies **rank selection**: sort the vehicle's identifier pool in
ascending numerical order (dominant identifiers are a priori more likely
to be injected, because they win arbitration), keep the candidates that
obey the constraints derived from the entropy changes, and take the
first ``rank`` (paper: 10) as the candidate set.  A detection is a *hit*
when the true malicious identifier is in that set.

For multiple injected identifiers the direction alone is not enough; the
paper's modified algorithm uses "not only the change direction but also
the changing rate of each bit".  We implement that as a **weighted
mixture decomposition**: the observed probability shift is modelled as

    dp  ≈  sum_j  w_j (bits_j - p_base)

where the per-member weights ``w_j`` are free — they absorb both the
injected volume and the fact that low-priority members win arbitration
less often than high-priority ones (their success shares are unequal,
measurably so at high injection frequencies).  Candidate k-sets are
enumerated over a shortlist and scored by the residual of a per-set
least-squares weight fit; the best set leads the ranked candidate list.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from math import comb
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import IDSConfig
from repro.core.template import GoldenTemplate
from repro.exceptions import InferenceError

#: Per-bit z-scores are capped here when converted to soft weights.
_Z_CAP = 6.0

#: Absolute floor for the per-bit noise scale (probability units).
_P_NOISE_FLOOR = 1e-4

#: Upper bound on enumerated k-combinations in the set search.  The
#: batched least-squares scorer handles this many 4-identifier sets in
#: well under a second; the size mainly buys shortlist *recall* for k=4.
_MAX_COMBINATIONS = 250_000


@dataclass(frozen=True)
class InferenceResult:
    """Everything the inference step derived from one attack episode."""

    #: Ranked candidate identifiers (at most ``config.rank``).
    candidates: Tuple[int, ...]
    #: Hard direction constraints: 1-based bit number -> required value.
    constraints: Dict[int, int]
    #: Estimated fraction of window traffic that was injected.
    injected_fraction: float
    #: Estimated mean bit composition of the injected identifiers.
    composition: np.ndarray
    #: Reconstructed k-identifier set (equals candidates[:1] for k=1).
    best_set: Tuple[int, ...]
    #: Estimated success share of each ``best_set`` member (sums to ~1).
    member_shares: Tuple[float, ...] = ()

    def hit_rate(self, true_ids: Sequence[int]) -> float:
        """Fraction of the true injected identifiers in the candidate set.

        For a single injected identifier this is the paper's hit
        indicator (1.0 or 0.0); for k identifiers it is the recovered
        fraction.
        """
        truth = set(true_ids)
        if not truth:
            raise InferenceError("hit_rate needs a non-empty truth set")
        return len(truth.intersection(self.candidates)) / len(truth)

    # ------------------------------------------------------------------
    # Serialisation (the fleet ledger persists scan results)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation (lossless float round trip)."""
        return {
            "candidates": [int(c) for c in self.candidates],
            # JSON object keys are strings; from_dict restores the ints.
            "constraints": {str(b): int(v) for b, v in self.constraints.items()},
            "injected_fraction": float(self.injected_fraction),
            "composition": [float(v) for v in self.composition],
            "best_set": [int(c) for c in self.best_set],
            "member_shares": [float(s) for s in self.member_shares],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InferenceResult":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                candidates=tuple(int(c) for c in payload["candidates"]),
                constraints={
                    int(b): int(v) for b, v in payload["constraints"].items()
                },
                injected_fraction=float(payload["injected_fraction"]),
                composition=np.asarray(payload["composition"], dtype=float),
                best_set=tuple(int(c) for c in payload["best_set"]),
                member_shares=tuple(float(s) for s in payload["member_shares"]),
            )
        except KeyError as exc:
            raise InferenceError(f"inference dict missing field {exc}") from exc


class InferenceEngine:
    """Rank-selection inference over a known identifier pool."""

    def __init__(
        self,
        id_pool: Sequence[int],
        template: GoldenTemplate,
        config: Optional[IDSConfig] = None,
    ) -> None:
        self.config = config or IDSConfig()
        pool = sorted(set(int(i) for i in id_pool))
        if not pool:
            raise InferenceError("identifier pool must be non-empty")
        if pool[0] < 0 or pool[-1] >= (1 << self.config.n_bits):
            raise InferenceError(
                f"pool identifiers must fit in {self.config.n_bits} bits"
            )
        self.template = template
        #: Ascending pool — the paper's prior ordering for rank selection.
        self.id_pool: Tuple[int, ...] = tuple(pool)
        shifts = np.arange(self.config.n_bits - 1, -1, -1, dtype=np.int64)
        self._pool_bits = (
            (np.asarray(pool, dtype=np.int64)[:, None] >> shifts[None, :]) & 1
        ).astype(float)
        #: Mixture atoms: each identifier's deviation from the baseline.
        self._atoms = self._pool_bits - self.template.mean_p[None, :]

    # ------------------------------------------------------------------
    # Evidence extraction
    # ------------------------------------------------------------------
    def _noise_scale(self, n_messages: int) -> np.ndarray:
        """Per-bit noise scale for probability shifts.

        The larger of the template's observed per-bit range and the
        binomial sampling deviation for the window population, floored at
        a small constant (bits that are constant across the catalog have
        zero template range).
        """
        p = self.template.mean_p
        binomial = np.sqrt(np.maximum(p * (1.0 - p), 1e-12) / max(1, n_messages))
        return np.maximum(np.maximum(self.template.p_range, binomial), _P_NOISE_FLOOR)

    def _z_scores(self, probabilities: np.ndarray, n_messages: int) -> np.ndarray:
        delta = np.asarray(probabilities, dtype=float) - self.template.mean_p
        return delta / self._noise_scale(n_messages)

    def constraints_from(
        self, probabilities: np.ndarray, n_messages: int
    ) -> Dict[int, int]:
        """Hard direction constraints from significantly shifted bits.

        Returns a mapping of 1-based bit number (Bit 1 = MSB) to the
        required bit value of the injected identifier.
        """
        z = self._z_scores(probabilities, n_messages)
        constraints: Dict[int, int] = {}
        for index in range(self.config.n_bits):
            if z[index] > self.config.constraint_z:
                constraints[index + 1] = 1
            elif z[index] < -self.config.constraint_z:
                constraints[index + 1] = 0
        return constraints

    def injected_fraction(self, n_messages: int, n_windows: int = 1) -> float:
        """Estimate the injected share of traffic from count inflation."""
        expected = self.template.mean_count * max(1, n_windows)
        if n_messages <= 0:
            raise InferenceError("n_messages must be positive")
        fraction = (n_messages - expected) / n_messages
        return float(np.clip(fraction, self.config.min_injected_fraction, 0.95))

    def composition_estimate(
        self, probabilities: np.ndarray, injected_fraction: float
    ) -> np.ndarray:
        """Mean bit composition of the injected identifiers.

        Inverts the mixture ``p_obs = (1-lam) p_base + lam b`` per bit.
        """
        if not 0.0 < injected_fraction <= 1.0:
            raise InferenceError(
                f"injected fraction must be in (0, 1], got {injected_fraction}"
            )
        delta = np.asarray(probabilities, dtype=float) - self.template.mean_p
        return np.clip(self.template.mean_p + delta / injected_fraction, 0.0, 1.0)

    # ------------------------------------------------------------------
    # Candidate ranking
    # ------------------------------------------------------------------
    def _rank_by_constraints(
        self, constraints: Dict[int, int], scores: np.ndarray
    ) -> List[int]:
        """Paper ordering, made noise-robust.

        Primary key: number of violated hard constraints (the paper's
        filter — identifiers obeying all constraints come first).
        Secondary: the soft composition-agreement score, so that when the
        shift is too weak to produce hard constraints the evidence still
        orders the pool.  Final tie-break: ascending identifier, the
        paper's dominant-first prior.
        """
        if constraints:
            bit_indices = np.asarray([bit - 1 for bit in constraints], dtype=int)
            required = np.asarray(
                [constraints[bit] for bit in constraints], dtype=float
            )
            violations = np.abs(
                self._pool_bits[:, bit_indices] - required[None, :]
            ).sum(axis=1)
        else:
            violations = np.zeros(len(self.id_pool))
        order = sorted(
            range(len(self.id_pool)),
            key=lambda i: (violations[i], -scores[i], self.id_pool[i]),
        )
        return [self.id_pool[i] for i in order]

    def _soft_scores(self, composition: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Confidence-weighted agreement of each pool ID with the composition."""
        weights = np.minimum(np.abs(z), _Z_CAP) / _Z_CAP
        agreement = 1.0 - np.abs(self._pool_bits - composition[None, :])
        return (agreement * weights[None, :]).sum(axis=1)

    # ------------------------------------------------------------------
    # Set reconstruction (multi-ID)
    # ------------------------------------------------------------------
    #: A composition bit is a *unanimity constraint* when its estimate is
    #: this close to 0 or 1 (every member must then carry that value).
    _UNANIMITY_MARGIN = 0.08

    #: The composition estimate for a bit is trusted when its noise,
    #: amplified by the mixture inversion (sigma / lambda), stays below
    #: this bound.
    _RELIABLE_SIGMA = 0.12

    def _candidate_members(
        self, k: int, delta: np.ndarray, noise: np.ndarray, fraction: float
    ) -> np.ndarray:
        """Pool indices that could be members (sound unanimity filter).

        A composition bit estimated at ~0 (or ~1) with small amplified
        noise means **every** injected member carries that bit value;
        identifiers violating such unanimity bits cannot be members.  The
        constraints are derived under a *conservative* (inflated)
        injected-fraction: the count-based estimate errs by tens of
        percent, and an underestimated fraction would overshoot the
        composition past [0, 1], where clipping fabricates unanimity bits
        that wrongly exclude true members.
        """
        safe_fraction = min(0.95, 1.5 * fraction)
        conservative = self.composition_estimate(
            self.template.mean_p + delta, safe_fraction
        )
        reliable = (noise / max(fraction, 1e-6)) < self._RELIABLE_SIGMA
        must_zero = reliable & (conservative <= self._UNANIMITY_MARGIN)
        must_one = reliable & (conservative >= 1.0 - self._UNANIMITY_MARGIN)
        mask = np.ones(len(self.id_pool), dtype=bool)
        if must_zero.any():
            mask &= (self._pool_bits[:, must_zero] == 0).all(axis=1)
        if must_one.any():
            mask &= (self._pool_bits[:, must_one] == 1).all(axis=1)
        surviving = np.flatnonzero(mask)
        if surviving.size < k:
            surviving = np.arange(len(self.id_pool))  # filter over-tightened
        return surviving

    def _fit_sets(
        self,
        sets_idx: np.ndarray,
        delta: np.ndarray,
        bit_weights: np.ndarray,
        penalize_degenerate: bool,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched weighted least-squares fit of candidate member sets.

        ``sets_idx`` is (C, j): C candidate sets of j pool indices each.
        Returns the fitted non-negative member weights (C, j) and the
        weighted residual objective (C,).
        """
        combo_atoms = self._atoms[sets_idx]  # (C, j, n_bits)
        weighted = combo_atoms * bit_weights[None, None, :]
        j = sets_idx.shape[1]
        gram = np.einsum("cki,cmi->ckm", weighted, combo_atoms)
        gram += 1e-9 * np.eye(j)[None, :, :]
        rhs = np.einsum("cki,i->ck", weighted, delta)
        weights_fit = np.linalg.solve(gram, rhs[:, :, None])[:, :, 0]
        weights_fit = np.clip(weights_fit, 0.0, None)
        model = np.einsum("ck,cki->ci", weights_fit, combo_atoms)
        residual = delta[None, :] - model
        objective = (bit_weights[None, :] * residual**2).sum(axis=1)
        if penalize_degenerate:
            # A member fitted with (near-)zero weight means the set is
            # really a smaller set; nudge toward genuine k-mixtures.
            total = weights_fit.sum(axis=1, keepdims=True) + 1e-12
            min_share = (weights_fit / total).min(axis=1)
            objective = np.where(
                min_share < 0.02, objective + 0.1 * np.median(objective) + 1e-9,
                objective,
            )
        return weights_fit, objective

    #: Beam widths per level of the set search.
    _BEAM_WIDTH = 800

    def _reconstruct_set(
        self, k: int, delta: np.ndarray, n_messages: int, fraction: float
    ) -> Tuple[List[int], np.ndarray]:
        """Weighted mixture decomposition of the probability shift.

        Beam search over member sets: level j holds the best ``beam``
        j-subsets under the batched least-squares objective (the weighted
        residual of ``dp ~ sum_j w_j (bits_j - p_base)`` with fitted
        non-negative weights).  Level-wise refitting is what makes the
        recall robust — the dominant-share member ranks well as a
        singleton, and once its contribution is fitted the residual
        promotes the remaining members, even though they can look nothing
        like the blended composition (a centroid-ranked shortlist would
        systematically miss such corner members).
        """
        noise = self._noise_scale(n_messages)
        bit_weights = 1.0 / noise**2
        bit_weights /= bit_weights.max()
        pool = self._candidate_members(k, delta, noise, fraction)

        beam: np.ndarray = np.empty((1, 0), dtype=np.int64)
        for level in range(1, k + 1):
            # Extend every beam set by every candidate member; canonical
            # (sorted, unique) form dedupes permutations.
            extended = np.concatenate(
                [
                    np.repeat(beam, len(pool), axis=0),
                    np.tile(pool, len(beam))[:, None],
                ],
                axis=1,
            )
            extended.sort(axis=1)
            valid = np.ones(len(extended), dtype=bool)
            if level > 1:
                valid &= (np.diff(extended, axis=1) > 0).all(axis=1)
            extended = np.unique(extended[valid], axis=0)
            _weights, objective = self._fit_sets(
                extended, delta, bit_weights, penalize_degenerate=(level == k)
            )
            if level < k:
                keep = np.argsort(objective)[: self._BEAM_WIDTH]
                beam = extended[keep]
            else:
                best_row = int(np.argmin(objective))
                best = extended[best_row]
                fitted, _obj = self._fit_sets(
                    best[None, :], delta, bit_weights, penalize_degenerate=False
                )
                shares = fitted[0]
                share_total = shares.sum() + 1e-12
                members = [self.id_pool[int(i)] for i in best]
                order = np.argsort(members)
                return (
                    [members[int(i)] for i in order],
                    np.asarray([shares[int(i)] / share_total for i in order]),
                )
        raise AssertionError("unreachable: k >= 1 guaranteed by caller")

    # ------------------------------------------------------------------
    # Extension: estimating the number of injected identifiers
    # ------------------------------------------------------------------
    def estimate_k(
        self,
        probabilities: np.ndarray,
        n_messages: int,
        n_windows: int = 1,
        k_max: int = 4,
    ) -> int:
        """Estimate how many identifiers were injected.

        The paper evaluates with k known per scenario; this extension
        picks k by parsimony: the smallest k whose weighted mixture fit
        explains the shift adequately (chi-square-scale residual), falling
        back to the best-fitting k.  With unnormalised ``1/noise**2``
        weights the residual objective behaves like a chi-square with
        ~``n_bits`` degrees of freedom on clean fits.
        """
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.shape != (self.config.n_bits,):
            raise InferenceError(
                f"probabilities must have shape ({self.config.n_bits},), "
                f"got {probabilities.shape}"
            )
        if k_max < 1:
            raise InferenceError(f"k_max must be >= 1, got {k_max}")
        delta = probabilities - self.template.mean_p
        noise = self._noise_scale(n_messages)
        fraction = self.injected_fraction(n_messages, n_windows)
        chi_weights = 1.0 / noise**2
        objectives = {}
        for k in range(1, k_max + 1):
            members, shares = self._reconstruct_set(k, delta, n_messages, fraction)
            sets_idx = np.asarray(
                [[self.id_pool.index(m) for m in members]], dtype=np.int64
            )
            _w, objective = self._fit_sets(
                sets_idx, delta, chi_weights, penalize_degenerate=False
            )
            objectives[k] = float(objective[0])
        adequate = 2.0 * self.config.n_bits
        for k in range(1, k_max + 1):
            if objectives[k] <= adequate:
                return k
        return min(objectives, key=objectives.get)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def infer(
        self,
        probabilities: np.ndarray,
        n_messages: int,
        k: int = 1,
        n_windows: int = 1,
    ) -> InferenceResult:
        """Infer the injected identifier(s) from window measurements.

        Parameters
        ----------
        probabilities:
            The per-bit 1-probabilities measured during the attack
            (aggregated over the alarmed windows).
        n_messages:
            Number of messages behind ``probabilities``.
        k:
            Number of injected identifiers assumed (paper: known per
            scenario; 1 for single/weak, 2..4 for multi).
        n_windows:
            How many windows the measurement spans (for the injected-
            fraction estimate).
        """
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.shape != (self.config.n_bits,):
            raise InferenceError(
                f"probabilities must have shape ({self.config.n_bits},), "
                f"got {probabilities.shape}"
            )
        if k < 1:
            raise InferenceError(f"k must be >= 1, got {k}")
        z = self._z_scores(probabilities, n_messages)
        constraints = self.constraints_from(probabilities, n_messages)
        fraction = self.injected_fraction(n_messages, n_windows)
        composition = self.composition_estimate(probabilities, fraction)
        delta = probabilities - self.template.mean_p

        if k == 1:
            scores = self._soft_scores(composition, z)
            ranked = self._rank_by_constraints(constraints, scores)
            candidates = tuple(ranked[: self.config.rank])
            best_set = candidates[:1]
            member_shares: Tuple[float, ...] = (1.0,) if best_set else ()
        else:
            members, shares = self._reconstruct_set(k, delta, n_messages, fraction)
            best_set = tuple(members)
            member_shares = tuple(float(s) for s in shares)
            bits_members = np.asarray(
                [
                    [(m >> shift) & 1 for shift in range(self.config.n_bits - 1, -1, -1)]
                    for m in members
                ],
                dtype=float,
            )
            composition = (
                (np.asarray(shares)[:, None] * bits_members).sum(axis=0)
                if len(members)
                else composition
            )
            scores = self._soft_scores(composition, z)
            order = sorted(
                range(len(self.id_pool)),
                key=lambda i: (-scores[i], self.id_pool[i]),
            )
            # The reconstructed set is the strongest evidence — lead the
            # candidate list with it, then fill by soft score.
            ranked = list(best_set)
            for index in order:
                can_id = self.id_pool[index]
                if can_id not in best_set:
                    ranked.append(can_id)
                if len(ranked) >= self.config.rank:
                    break
            candidates = tuple(ranked[: self.config.rank])
        return InferenceResult(
            candidates=candidates,
            constraints=constraints,
            injected_fraction=fraction,
            composition=composition,
            best_set=best_set,
            member_shares=member_shares,
        )

    def infer_from_windows(self, windows: Sequence, k: int = 1) -> InferenceResult:
        """Aggregate alarmed windows and infer.

        ``windows`` are :class:`~repro.core.detector.WindowResult`
        objects; only alarmed windows contribute.  Falls back to all
        judged windows when none alarmed (so the caller can still ask
        "what would you have guessed").
        """
        selected = [w for w in windows if w.alarm]
        if not selected:
            selected = [w for w in windows if w.judged]
        if not selected:
            raise InferenceError("no judged windows to infer from")
        total = sum(w.n_messages for w in selected)
        combined = np.zeros(self.config.n_bits, dtype=float)
        for window in selected:
            combined += window.probabilities * window.n_messages
        combined /= total
        return self.infer(combined, total, k=k, n_windows=len(selected))

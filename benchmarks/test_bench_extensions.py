"""Extension benchmarks: beyond the paper's evaluated scenarios.

* **response gate** — the abstract's "discarded or blocked" claim,
  quantified: attack suppression vs. collateral on legitimate traffic;
* **sliding vs. tumbling windows** — the reaction-latency pay-off of the
  incremental counter arithmetic;
* **dual-bus deployment** — the paper's note that the method "would also
  work for high-speed CAN", exercised on the 500 kbit/s segment;
* **hard cases** — replay (ID mix preserved) and masquerade (victim
  silenced), probing where an ID-based method starts to struggle.
"""

import numpy as np
import pytest

from repro.attacks import MasqueradeAttacker, ReplayAttacker, SingleIDAttacker
from repro.can.constants import SECOND_US
from repro.core import (
    EntropyDetector,
    IDSConfig,
    IDSPipeline,
    ResponseGate,
    SlidingEntropyDetector,
    TemplateBuilder,
)
from repro.experiments.report import render_table
from repro.vehicle import DualBusVehicle, VehicleSimulation


class TestResponseGate:
    @pytest.fixture(scope="class")
    def outcome(self, setup):
        sim = VehicleSimulation(catalog=setup.catalog, scenario="city", seed=81)
        attack_id = setup.catalog.ids[75]
        sim.add_node(
            SingleIDAttacker(
                can_id=attack_id, frequency_hz=100.0, start_s=2.0,
                duration_s=16.0, seed=7,
            )
        )
        trace = sim.run(20.0)
        gate = ResponseGate(
            setup.template, setup.catalog.ids, setup.config,
            block_top=1, ttl_us=20 * SECOND_US,
        )
        return gate.process_trace(trace), attack_id

    def test_bench_response_gate(self, benchmark, outcome):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        result, attack_id = outcome
        print("\nResponse gate (block top-1 inferred ID, 20 s TTL):")
        print("  " + result.summary())

    def test_most_attack_traffic_suppressed(self, outcome):
        result, _ = outcome
        assert result.attack_suppression > 0.6

    def test_low_collateral(self, outcome):
        result, _ = outcome
        assert result.collateral_rate < 0.02

    def test_attack_id_blocked(self, outcome):
        result, attack_id = outcome
        assert attack_id in result.blocked_ids


class TestSlidingLatency:
    @pytest.fixture(scope="class")
    def latencies(self, setup):
        sim = VehicleSimulation(catalog=setup.catalog, scenario="city", seed=82)
        sim.add_node(
            SingleIDAttacker(
                can_id=setup.catalog.ids[60], frequency_hz=100.0,
                start_s=3.0, duration_s=8.0, seed=8,
            )
        )
        trace = sim.run(14.0)
        attack_start_us = 3 * SECOND_US

        def first_alarm(windows):
            for window in windows:
                if window.alarm:
                    return window.t_end_us - attack_start_us
            return None

        tumbling = first_alarm(
            EntropyDetector(setup.template, setup.config).scan(trace)
        )
        sliding = first_alarm(
            SlidingEntropyDetector(setup.template, setup.config, slices=4).scan(trace)
        )
        return tumbling, sliding

    def test_bench_sliding_latency(self, benchmark, latencies):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        tumbling, sliding = latencies
        table = render_table(
            ["detector", "reaction after attack start"],
            [
                ["tumbling (paper)", f"{tumbling / 1e6:.2f}s"],
                ["sliding (4 strides)", f"{sliding / 1e6:.2f}s"],
            ],
            title="Ablation: sliding vs tumbling reaction latency",
        )
        print("\n" + table)

    def test_both_detect(self, latencies):
        tumbling, sliding = latencies
        assert tumbling is not None and sliding is not None

    def test_sliding_no_slower(self, latencies):
        tumbling, sliding = latencies
        assert sliding <= tumbling


class TestDualBus:
    @pytest.fixture(scope="class")
    def hs_detection(self):
        """Train and attack on the high-speed segment."""
        config = IDSConfig(template_windows=6, min_window_messages=30)

        def hs_trace(seed, with_attack):
            vehicle = DualBusVehicle(seed=seed)
            if with_attack:
                attack_id = vehicle.hs_catalog.ids[20]
                vehicle.hs_bus.attach(
                    SingleIDAttacker(
                        can_id=attack_id, frequency_hz=100.0, start_s=2.0,
                        duration_s=8.0, seed=seed,
                    )
                )
            vehicle.run(12.0)
            return vehicle.hs_bus.trace

        builder = TemplateBuilder(config)
        for seed in range(3):
            builder.add_trace_windows(hs_trace(seed + 10, with_attack=False))
        template = builder.build()
        report = IDSPipeline(template, config).analyze(hs_trace(99, True))
        return report

    def test_bench_dual_bus(self, benchmark, hs_detection):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        print(
            f"\nHigh-speed (500 kbit/s) segment: Dr="
            f"{hs_detection.detection_rate:.1%}, "
            f"FPR={hs_detection.false_positive_rate:.1%}"
        )

    def test_high_speed_detection_works(self, hs_detection):
        """The paper: "our detection method would also work for
        high-speed CAN bus"."""
        assert hs_detection.detection_rate > 0.9
        assert hs_detection.false_positive_rate <= 0.1


class TestHardCases:
    @pytest.fixture(scope="class")
    def rates(self, setup):
        results = {}
        # Replay at 2x aggregate rate: ID mix preserved, volume doubled.
        from repro.vehicle.traffic import simulate_drive

        recording = simulate_drive(3.0, scenario="city", seed=83,
                                   catalog=setup.catalog)
        sim = VehicleSimulation(catalog=setup.catalog, scenario="city", seed=84)
        sim.add_node(
            ReplayAttacker(list(recording)[:3000], frequency_hz=700.0,
                           start_s=2.0, duration_s=8.0, seed=9)
        )
        results["replay (700 Hz)"] = setup.pipeline.analyze(
            sim.run(12.0)
        ).detection_rate

        # Masquerade at 10x the victim's rate.
        sim = VehicleSimulation(catalog=setup.catalog, scenario="city", seed=85)
        victim = sim.ecus[1]
        victim_id = sorted(victim.assigned_ids())[0]
        attacker = MasqueradeAttacker(
            victim_id, victim=victim, frequency_hz=100.0, start_s=2.0,
            duration_s=8.0, seed=10,
        )
        sim.add_node(attacker)
        results["masquerade (100 Hz)"] = setup.pipeline.analyze(
            sim.run(12.0)
        ).detection_rate
        return results

    def test_bench_hard_cases(self, benchmark, rates):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        table = render_table(
            ["attack", "detection rate"],
            [[name, f"{rate:.1%}"] for name, rate in rates.items()],
            title="Extension: hard cases for an ID-based method",
        )
        print("\n" + table)

    def test_masquerade_with_rate_mismatch_detected(self, rates):
        assert rates["masquerade (100 Hz)"] > 0.5

    def test_rates_well_formed(self, rates):
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())

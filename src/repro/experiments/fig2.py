"""Experiment E1 — the paper's Fig. 2.

Fig. 2 plots the golden template (the 11-bit entropy vector averaged
over clean driving) next to one attack case study, where "significant
changes occurred at some bits, e.g. Bit 6, Bit 7 and Bit 11".

The reproduction prints, per bit: the template mean/min/max entropy, the
threshold, the entropy measured during the attack window, and whether
the bit fired.  The headline property — a handful of bits deviating far
beyond their thresholds while the rest sit inside the template band —
is asserted by the benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.attacks import SingleIDAttacker
from repro.core.detector import WindowResult
from repro.experiments.report import hexid, render_table
from repro.experiments.runner import (
    ATTACK_DURATION_S,
    ATTACK_START_S,
    ExperimentSetup,
    build_setup,
    run_attack,
)
from repro.vehicle import VehicleSimulation


@dataclass
class Fig2Result:
    """Template vector and one attack window, bit by bit."""

    attack_id: int
    frequency_hz: float
    template_mean: np.ndarray
    template_min: np.ndarray
    template_max: np.ndarray
    thresholds: np.ndarray
    attack_entropy: np.ndarray
    violated_bits: Tuple[int, ...]

    def render(self) -> str:
        """Per-bit table, the text form of Fig. 2."""
        rows = []
        n_bits = len(self.template_mean)
        for bit in range(n_bits):
            deviation = self.attack_entropy[bit] - self.template_mean[bit]
            rows.append(
                [
                    f"Bit {bit + 1}",
                    f"{self.template_mean[bit]:.4f}",
                    f"{self.template_min[bit]:.4f}",
                    f"{self.template_max[bit]:.4f}",
                    f"{self.thresholds[bit]:.4f}",
                    f"{self.attack_entropy[bit]:.4f}",
                    f"{deviation:+.4f}",
                    "ALARM" if (bit + 1) in self.violated_bits else "",
                ]
            )
        return render_table(
            headers=[
                "bit",
                "template H",
                "min H",
                "max H",
                "threshold",
                "attack H",
                "deviation",
                "",
            ],
            rows=rows,
            title=(
                f"Fig. 2 — golden template vs. injection of {hexid(self.attack_id)} "
                f"at {self.frequency_hz:g} Hz"
            ),
        )


def run(
    setup: Optional[ExperimentSetup] = None,
    attack_id: Optional[int] = None,
    frequency_hz: float = 100.0,
    seed: int = 3,
) -> Fig2Result:
    """Build the template and capture one attacked window."""
    if setup is None:
        setup = build_setup()
    if attack_id is None:
        # A mid-priority identifier, like the paper's case study.
        attack_id = setup.catalog.ids[len(setup.catalog.ids) // 3]

    sim = VehicleSimulation(catalog=setup.catalog, scenario="city", seed=seed)
    attacker = SingleIDAttacker(
        can_id=attack_id,
        frequency_hz=frequency_hz,
        start_s=ATTACK_START_S,
        duration_s=ATTACK_DURATION_S,
        seed=seed,
    )
    sim.add_node(attacker)
    trace = sim.run(ATTACK_START_S + ATTACK_DURATION_S + 2.0)
    report = setup.pipeline.analyze(trace)

    # The case-study window: the alarmed window with the most injections,
    # falling back to the most-injected window overall.
    candidates: List[WindowResult] = report.alarmed_windows or [
        w for w in report.judged_windows if w.n_attack_messages > 0
    ]
    if not candidates:
        candidates = report.judged_windows
    window = max(candidates, key=lambda w: w.n_attack_messages)

    return Fig2Result(
        attack_id=attack_id,
        frequency_hz=frequency_hz,
        template_mean=setup.template.mean_entropy,
        template_min=setup.template.min_entropy,
        template_max=setup.template.max_entropy,
        thresholds=setup.template.thresholds,
        attack_entropy=window.entropy,
        violated_bits=window.violated_bit_numbers,
    )

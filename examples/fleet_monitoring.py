#!/usr/bin/env python
"""Fleet monitoring: persistent store, incremental scans, drift alarms.

The paper judges one capture at a time; a deployment monitors a *fleet*
for months.  This example walks the fleet subsystem end to end:

1. build a :class:`FleetStore` with two vehicles, import clean drives
   and train a golden template per vehicle;
2. run a first (cold) fleet scan — every capture is scanned and its
   report lands in the vehicle's scan ledger;
3. re-scan: nothing changed, so every verdict replays from the ledger
   (bit-identical to a cold scan, a fraction of the cost);
4. a new attack capture arrives on one vehicle — the incremental scan
   pays only for that file and flags the vehicle;
5. aggregate the fleet report: pooled detection/FPR per vehicle plus a
   CUSUM entropy-drift series that would catch a quietly-aging
   template long before it misbehaves.

Run:  python examples/fleet_monitoring.py
"""

import tempfile
from pathlib import Path

from repro.attacks import SingleIDAttacker
from repro.core import IDSConfig, IDSPipeline, build_template
from repro.fleet import FleetStore
from repro.vehicle import VehicleSimulation, ford_fusion_catalog
from repro.vehicle.traffic import record_template_windows, simulate_drive


def main() -> None:
    catalog = ford_fusion_catalog(seed=0)
    config = IDSConfig(template_windows=12)

    with tempfile.TemporaryDirectory(prefix="repro-fleet-") as tmp:
        # -- 1. the store: two vehicles, clean drives, templates --------
        store = FleetStore(Path(tmp) / "fleet")
        for v, vehicle_id in enumerate(("car-a", "car-b")):
            for i in range(2):
                drive = simulate_drive(6.0, seed=50 + 10 * v + i, catalog=catalog)
                store.add_capture(vehicle_id, f"drive{i}.log", drive)
            windows = record_template_windows(
                n_windows=config.template_windows,
                window_s=config.window_us / 1e6,
                seed=7 + v,
                catalog=catalog,
            )
            store.save_template(
                vehicle_id,
                build_template(windows, config),
                window_us=config.window_us,
            )
        print(f"store: {store.vehicles()} with 2 captures each\n")

        pipeline = IDSPipeline(
            build_template(
                record_template_windows(12, 2.0, seed=7, catalog=catalog), config
            ),
            config,
            id_pool=catalog.ids,
        )

        # -- 2. cold scan ------------------------------------------------
        report = pipeline.analyze_fleet(store, workers=1)
        for vehicle_id, watch in report.watch.items():
            print(f"cold scan  {vehicle_id}: {watch.summary()}")

        # -- 3. warm scan: the ledger answers everything -----------------
        report = pipeline.analyze_fleet(store, workers=1)
        for vehicle_id, watch in report.watch.items():
            print(f"warm scan  {vehicle_id}: {watch.summary()}")

        # -- 4. a new attacked capture arrives on car-b ------------------
        sim = VehicleSimulation(catalog=catalog, scenario="city", seed=90)
        sim.add_node(
            SingleIDAttacker(
                can_id=catalog.ids[60], frequency_hz=100.0,
                start_s=1.0, duration_s=5.0, seed=3,
            )
        )
        store.add_capture("car-b", "drive2.log", sim.run(8.0))
        report = pipeline.analyze_fleet(store, workers=1)
        for vehicle_id, watch in report.watch.items():
            print(f"incremental {vehicle_id}: {watch.summary()}")
        print()

        # -- 5. the fleet report ----------------------------------------
        print(report.summary())
        alarmed = report.alarmed_vehicles
        print(
            f"\nfleet verdict: {', '.join(alarmed) if alarmed else 'all clean'}"
            f" under attack; drift series cover "
            f"{sum(len(v.drift_names) for v in report.vehicles.values())} "
            f"capture points"
        )


if __name__ == "__main__":
    main()

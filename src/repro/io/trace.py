"""In-memory traces of CAN traffic.

A :class:`TraceRecord` is one frame as a logger on the bus saw it: the
completion timestamp, the frame fields, plus two pieces of simulator
ground truth a real logger would not have — the sending node's name and
whether the frame was injected by an attacker.  The ground truth never
feeds the detectors; it exists so the evaluation can score them.

:class:`Trace` is an ordered container of records with the vectorised
accessors the IDS and the metrics code need (identifier arrays, timestamp
arrays, time slicing, merging).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.can.constants import SECOND_US
from repro.exceptions import TraceFormatError


@dataclass(frozen=True)
class TraceRecord:
    """One logged frame.

    ``timestamp_us`` is the time the frame *completed* on the bus, in
    integer microseconds from the start of the capture, matching how
    candump timestamps frames.
    """

    timestamp_us: int
    can_id: int
    data: bytes = b""
    extended: bool = False
    source: str = ""
    is_attack: bool = False

    @property
    def dlc(self) -> int:
        """Payload byte count."""
        return len(self.data)

    @property
    def timestamp_s(self) -> float:
        """Timestamp in seconds (derived; storage is integer us)."""
        return self.timestamp_us / SECOND_US

    def relabel(self, *, is_attack: Optional[bool] = None, source: Optional[str] = None) -> "TraceRecord":
        """Return a copy with ground-truth fields replaced."""
        out = self
        if is_attack is not None:
            out = replace(out, is_attack=is_attack)
        if source is not None:
            out = replace(out, source=source)
        return out


class Trace:
    """An ordered sequence of :class:`TraceRecord`.

    Records must be appended in non-decreasing timestamp order; this is
    what a single-point bus tap produces and what the streaming detectors
    assume.
    """

    def __init__(self, records: Optional[Iterable[TraceRecord]] = None) -> None:
        self._records: List[TraceRecord] = []
        self._stamps_cache: Optional[np.ndarray] = None
        if records is not None:
            for record in records:
                self.append(record)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self._records[index])
        return self._records[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._records == other._records

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        span = f"{self.duration_us / SECOND_US:.3f}s" if self._records else "empty"
        return f"Trace({len(self._records)} records, {span})"

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def append(self, record: TraceRecord) -> None:
        """Append one record, enforcing timestamp monotonicity."""
        if self._records and record.timestamp_us < self._records[-1].timestamp_us:
            raise TraceFormatError(
                f"record at {record.timestamp_us}us appended after "
                f"{self._records[-1].timestamp_us}us; traces must be time-ordered"
            )
        self._records.append(record)
        self._stamps_cache = None

    @staticmethod
    def merge(*traces: "Trace") -> "Trace":
        """Merge time-ordered traces into one time-ordered trace.

        Useful for composing a clean capture with an attack capture that
        was recorded against the same clock.
        """
        merged = sorted(
            (record for trace in traces for record in trace),
            key=lambda r: r.timestamp_us,
        )
        return Trace(merged)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def start_us(self) -> int:
        """Timestamp of the first record (0 for an empty trace)."""
        return self._records[0].timestamp_us if self._records else 0

    @property
    def end_us(self) -> int:
        """Timestamp of the last record (0 for an empty trace)."""
        return self._records[-1].timestamp_us if self._records else 0

    @property
    def duration_us(self) -> int:
        """Time spanned by the records."""
        return self.end_us - self.start_us

    @property
    def attack_count(self) -> int:
        """Number of ground-truth attack records."""
        return sum(1 for r in self._records if r.is_attack)

    # ------------------------------------------------------------------
    # Vectorised accessors
    # ------------------------------------------------------------------
    def ids(self) -> np.ndarray:
        """All identifiers as an ``int64`` array, in time order."""
        return np.fromiter(
            (r.can_id for r in self._records), dtype=np.int64, count=len(self._records)
        )

    def timestamps_us(self) -> np.ndarray:
        """All timestamps (us) as an ``int64`` array, in time order.

        The array is cached (and invalidated by :meth:`append`) because
        time slicing and windowing query it repeatedly; treat it as
        read-only.
        """
        if self._stamps_cache is None or len(self._stamps_cache) != len(self._records):
            self._stamps_cache = np.fromiter(
                (r.timestamp_us for r in self._records),
                dtype=np.int64,
                count=len(self._records),
            )
        return self._stamps_cache

    def attack_mask(self) -> np.ndarray:
        """Boolean array marking ground-truth attack records."""
        return np.fromiter(
            (r.is_attack for r in self._records),
            dtype=bool,
            count=len(self._records),
        )

    def unique_ids(self) -> np.ndarray:
        """Sorted array of distinct identifiers seen in the trace."""
        return np.unique(self.ids()) if self._records else np.empty(0, dtype=np.int64)

    def to_columns(self):
        """This capture as a :class:`~repro.io.columnar.ColumnTrace`."""
        from repro.io.columnar import ColumnTrace

        return ColumnTrace.from_trace(self._records)

    # ------------------------------------------------------------------
    # Slicing and filtering
    # ------------------------------------------------------------------
    def between(self, start_us: int, end_us: int) -> "Trace":
        """Records with ``start_us <= timestamp < end_us`` (binary search).

        Runs against the cached timestamp array, so repeated windowing
        of the same trace costs two ``searchsorted`` calls — not a
        rebuild of all timestamps per query.
        """
        stamps = self.timestamps_us()
        lo = int(np.searchsorted(stamps, start_us, side="left"))
        hi = int(np.searchsorted(stamps, end_us, side="left"))
        return Trace(self._records[lo:hi])

    def filter(self, predicate: Callable[[TraceRecord], bool]) -> "Trace":
        """Records satisfying ``predicate``, preserving order."""
        return Trace(r for r in self._records if predicate(r))

    def without_attacks(self) -> "Trace":
        """Only the legitimate traffic (by ground truth)."""
        return self.filter(lambda r: not r.is_attack)

    def only_attacks(self) -> "Trace":
        """Only the injected traffic (by ground truth)."""
        return self.filter(lambda r: r.is_attack)

    def shifted(self, offset_us: int) -> "Trace":
        """A copy with every timestamp moved by ``offset_us``."""
        return Trace(
            replace(r, timestamp_us=r.timestamp_us + offset_us) for r in self._records
        )

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------
    def time_windows(
        self, window_us: int, *, start_us: Optional[int] = None
    ) -> Iterator["Trace"]:
        """Yield consecutive tumbling time windows of ``window_us``.

        The last partial window is yielded too (callers that need a
        minimum population filter on ``len(window)``).
        """
        if window_us <= 0:
            raise ValueError(f"window must be positive, got {window_us}")
        if not self._records:
            return
        t0 = self.start_us if start_us is None else start_us
        t_end = self.end_us
        while t0 <= t_end:
            yield self.between(t0, t0 + window_us)
            t0 += window_us

    def count_windows(self, size: int) -> Iterator["Trace"]:
        """Yield consecutive tumbling windows of ``size`` records each."""
        if size <= 0:
            raise ValueError(f"window size must be positive, got {size}")
        for lo in range(0, len(self._records), size):
            yield Trace(self._records[lo : lo + size])

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def message_rate_hz(self) -> float:
        """Average message rate over the trace duration."""
        if len(self._records) < 2 or self.duration_us == 0:
            return 0.0
        return (len(self._records) - 1) / (self.duration_us / SECOND_US)

    def id_histogram(self) -> dict:
        """Mapping of identifier -> occurrence count."""
        hist: dict = {}
        for record in self._records:
            hist[record.can_id] = hist.get(record.can_id, 0) + 1
        return hist

"""The scan ledger: caching semantics, atomicity, corruption recovery."""

import json

import pytest

from repro.fleet.ledger import ScanLedger, atomic_write_text
from repro.io.fingerprint import fingerprint_bytes, fingerprint_file

REPORT = {"windows": [], "alerts": [], "inference": None}


class TestFingerprint:
    def test_file_matches_bytes(self, tmp_path):
        path = tmp_path / "cap.log"
        path.write_bytes(b"(1.000000) can0 1A4#\n")
        assert fingerprint_file(path) == fingerprint_bytes(path.read_bytes())

    def test_content_sensitivity(self, tmp_path):
        path = tmp_path / "cap.log"
        path.write_bytes(b"aaa")
        first = fingerprint_file(path)
        path.write_bytes(b"aab")
        assert fingerprint_file(path) != first
        # Same content, different name: same fingerprint (path is not
        # part of the content key; the ledger keys by path separately).
        other = tmp_path / "other.log"
        other.write_bytes(b"aab")
        assert fingerprint_file(other) == fingerprint_file(path)

    def test_size_embedded(self):
        assert fingerprint_bytes(b"xyz").endswith(":3")


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "ledger.json"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"

    def test_no_temp_litter(self, tmp_path):
        atomic_write_text(tmp_path / "ledger.json", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["ledger.json"]

    def test_failure_leaves_destination_untouched(self, tmp_path):
        """A write that dies mid-flight must not touch the old file or
        leave a temp file behind (the crash-safety satellite)."""
        path = tmp_path / "ledger.json"
        path.write_text("original")
        with pytest.raises(TypeError):
            atomic_write_text(path, object())  # handle.write rejects it
        assert path.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["ledger.json"]


class TestScanLedger:
    def test_hit_requires_path_and_fingerprint(self, tmp_path):
        ledger = ScanLedger(tmp_path / "ledger.json", context="ctx")
        ledger.put("a.log", "fp1", REPORT)
        assert ledger.get("a.log", "fp1") == REPORT
        assert ledger.get("a.log", "fp2") is None  # content changed
        assert ledger.get("b.log", "fp1") is None  # unknown path
        assert ledger.hits == 1 and ledger.misses == 2

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = ScanLedger(path, context="ctx")
        ledger.put("a.log", "fp1", REPORT)
        ledger.save()
        reloaded = ScanLedger(path, context="ctx")
        assert not reloaded.rebuilt
        assert reloaded.get("a.log", "fp1") == REPORT

    def test_context_mismatch_rebuilds(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = ScanLedger(path, context="template-v1")
        ledger.put("a.log", "fp1", REPORT)
        ledger.save()
        stale = ScanLedger(path, context="template-v2")
        assert stale.rebuilt
        assert stale.rebuild_reason == "context-changed"
        assert stale.get("a.log", "fp1") is None

    def test_truncated_file_detected_and_rebuilt(self, tmp_path):
        """The crash-recovery satellite: a torn ledger must never be
        trusted — it loads empty (flagged) and the next save repairs it."""
        path = tmp_path / "ledger.json"
        ledger = ScanLedger(path, context="ctx")
        ledger.put("a.log", "fp1", REPORT)
        ledger.save()
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # torn write
        recovered = ScanLedger(path, context="ctx")
        assert recovered.rebuilt
        assert recovered.rebuild_reason == "corrupt"  # not routine invalidation
        assert len(recovered) == 0
        recovered.put("a.log", "fp1", REPORT)
        recovered.save()
        assert not ScanLedger(path, context="ctx").rebuilt

    @pytest.mark.parametrize(
        "payload",
        [
            "[]",  # wrong root type
            '{"version": 99, "context": "ctx", "entries": {}}',
            '{"version": 1, "context": "ctx", "entries": []}',
            '{"version": 1, "context": "ctx", "entries": {"a": {"fingerprint": "x"}}}',
            "",  # empty file
        ],
    )
    def test_malformed_payloads_rebuild(self, tmp_path, payload):
        path = tmp_path / "ledger.json"
        path.write_text(payload)
        assert ScanLedger(path, context="ctx").rebuilt

    def test_prune(self, tmp_path):
        ledger = ScanLedger(tmp_path / "ledger.json", context="ctx")
        ledger.put("a.log", "fp1", REPORT)
        ledger.put("b.log", "fp2", REPORT)
        assert ledger.prune(["a.log"]) == 1
        assert "b.log" not in ledger
        assert list(ledger.keys()) == ["a.log"]

    def test_missing_file_is_fresh_not_rebuilt(self, tmp_path):
        ledger = ScanLedger(tmp_path / "absent.json", context="ctx")
        assert not ledger.rebuilt and ledger.rebuild_reason is None
        assert len(ledger) == 0

    def test_save_is_atomic_on_disk(self, tmp_path):
        path = tmp_path / "deep" / "ledger.json"
        ledger = ScanLedger(path, context="ctx")
        ledger.put("a.log", "fp1", REPORT)
        ledger.save()  # creates the parent directory too
        assert json.loads(path.read_text())["entries"]["a.log"]["fingerprint"] == "fp1"
        assert [p.name for p in path.parent.iterdir()] == ["ledger.json"]


class TestContextAdoption:
    """``context=None``: maintenance loads that must not wipe entries."""

    def test_adopts_stored_context_and_keeps_entries(self, tmp_path):
        path = tmp_path / "ledger.json"
        original = ScanLedger(path, context="ctx-v1")
        original.put("a.log", "fp1", REPORT)
        original.save()
        adopted = ScanLedger(path, context=None)
        assert adopted.context == "ctx-v1"
        assert not adopted.rebuilt and "a.log" in adopted
        # A save under the adopted context stays readable by the owner.
        adopted.save()
        assert "a.log" in ScanLedger(path, context="ctx-v1")

    def test_missing_file_adopts_empty_context(self, tmp_path):
        ledger = ScanLedger(tmp_path / "absent.json", context=None)
        assert ledger.context == "" and len(ledger) == 0


class TestCompact:
    def make_archive(self, tmp_path, names):
        directory = tmp_path / "captures"
        directory.mkdir(exist_ok=True)
        for name in names:
            (directory / name).write_text("(0.000000) can0 123#00\n")
        return directory

    def test_drops_only_departed_captures(self, tmp_path):
        archive_dir = self.make_archive(tmp_path, ["a.log", "b.log"])
        path = tmp_path / "ledger.json"
        ledger = ScanLedger(path, context="ctx")
        ledger.put("a.log", "fp1", REPORT)
        ledger.put("b.log", "fp2", REPORT)
        ledger.put("gone.log", "fp3", REPORT)
        ledger.save()
        compacting = ScanLedger(path, context=None)
        assert compacting.compact(archive_dir) == 1
        # Saved: a fresh owner load sees the compacted entry set.
        reloaded = ScanLedger(path, context="ctx")
        assert sorted(reloaded.keys()) == ["a.log", "b.log"]

    def test_nothing_to_prune_leaves_file_untouched(self, tmp_path):
        archive_dir = self.make_archive(tmp_path, ["a.log"])
        path = tmp_path / "ledger.json"
        ledger = ScanLedger(path, context="ctx")
        ledger.put("a.log", "fp1", REPORT)
        ledger.save()
        before = path.stat().st_mtime_ns
        assert ScanLedger(path, context=None).compact(archive_dir) == 0
        assert path.stat().st_mtime_ns == before  # no rewrite

    def test_corrupt_ledger_not_overwritten(self, tmp_path):
        """Compacting a corrupt file must preserve the evidence, not
        save a rebuilt-empty ledger over it."""
        archive_dir = self.make_archive(tmp_path, ["a.log"])
        path = tmp_path / "ledger.json"
        path.write_text("{torn")
        ledger = ScanLedger(path, context=None)
        assert ledger.rebuilt
        assert ledger.compact(archive_dir) == 0
        assert path.read_text() == "{torn"

"""Decoding CAN frames back from their wire bitstream.

The encoder lives in :mod:`repro.can.bits` (:func:`frame_bitstream`);
this module is its inverse: it consumes the stuffed bit sequence of the
stuffed region, reverses the stuffing, parses the arbitration/control/
data/CRC fields for both base and extended formats, and verifies the
CRC-15.  Together they give the simulator a complete, fuzz-testable
wire-format round trip — and a foundation for tooling that inspects raw
captures (e.g. a logic-analyzer import path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.can.bits import crc15, id_from_bits, unstuff_bits
from repro.can.constants import CRC_BITS, MAX_DLC
from repro.can.frame import CANFrame
from repro.exceptions import FrameError


@dataclass(frozen=True)
class DecodedFrame:
    """A parsed frame plus decoder diagnostics."""

    frame: CANFrame
    crc_ok: bool
    stuff_bits_removed: int
    bits_consumed: int


def _take(bits: Sequence[int], cursor: int, count: int) -> Tuple[Tuple[int, ...], int]:
    if cursor + count > len(bits):
        raise FrameError(
            f"truncated frame: needed {count} bits at offset {cursor}, "
            f"have {len(bits) - cursor}"
        )
    return tuple(bits[cursor : cursor + count]), cursor + count


def decode_frame(stuffed_bits: Sequence[int]) -> DecodedFrame:
    """Decode one frame from its stuffed-region bit sequence.

    Parameters
    ----------
    stuffed_bits:
        The bits produced by :func:`repro.can.bits.frame_bitstream` —
        start-of-frame through the CRC sequence, stuff bits included.

    Returns
    -------
    DecodedFrame
        The reconstructed :class:`CANFrame`, whether the transmitted CRC
        matched a recomputation, how many stuff bits were removed, and
        how many unstuffed bits the frame consumed.

    Raises
    ------
    FrameError
        On stuff violations, truncated input, a dominant start-of-frame
        violation, reserved DLC values, or any field inconsistency.
    """
    raw = unstuff_bits(stuffed_bits)
    removed = len(stuffed_bits) - len(raw)
    cursor = 0

    sof, cursor = _take(raw, cursor, 1)
    if sof[0] != 0:
        raise FrameError("start-of-frame bit must be dominant (0)")

    base_id_bits, cursor = _take(raw, cursor, 11)
    bit12, cursor = _take(raw, cursor, 1)  # RTR (base) or SRR (extended)
    ide, cursor = _take(raw, cursor, 1)

    if ide[0] == 0:
        # Base format: bit12 was RTR, next is r0.
        rtr = bool(bit12[0])
        _r0, cursor = _take(raw, cursor, 1)
        can_id = id_from_bits(base_id_bits)
        extended = False
    else:
        # Extended format: bit12 was SRR (must be recessive).
        if bit12[0] != 1:
            raise FrameError("SRR must be recessive in extended frames")
        ext_id_bits, cursor = _take(raw, cursor, 18)
        rtr_bit, cursor = _take(raw, cursor, 1)
        _r1r0, cursor = _take(raw, cursor, 2)
        rtr = bool(rtr_bit[0])
        can_id = (id_from_bits(base_id_bits) << 18) | id_from_bits(ext_id_bits)
        extended = True

    dlc_bits, cursor = _take(raw, cursor, 4)
    dlc = id_from_bits(dlc_bits)
    if dlc > MAX_DLC:
        raise FrameError(f"reserved DLC value {dlc}")

    if rtr:
        payload = b""
    else:
        data_bits, cursor = _take(raw, cursor, 8 * dlc)
        payload = bytes(
            id_from_bits(data_bits[offset : offset + 8])
            for offset in range(0, len(data_bits), 8)
        )

    crc_bits, cursor = _take(raw, cursor, CRC_BITS)
    transmitted_crc = id_from_bits(crc_bits)
    recomputed = crc15(raw[: cursor - CRC_BITS])

    if cursor != len(raw):
        raise FrameError(
            f"{len(raw) - cursor} trailing bits after the CRC sequence"
        )

    frame = CANFrame(can_id, payload, extended=extended, rtr=rtr)
    return DecodedFrame(
        frame=frame,
        crc_ok=(transmitted_crc == recomputed),
        stuff_bits_removed=removed,
        bits_consumed=len(raw),
    )


def roundtrip(frame: CANFrame) -> DecodedFrame:
    """Encode a frame and decode it back (self-check helper).

    Raises
    ------
    FrameError
        If the decoded frame differs from the input or the CRC fails —
        either indicates an encoder/decoder bug.
    """
    from repro.can.bits import frame_bitstream

    decoded = decode_frame(
        frame_bitstream(
            frame.can_id, frame.data, extended=frame.extended, rtr=frame.rtr
        )
    )
    if decoded.frame != frame:
        raise FrameError(f"roundtrip mismatch: {frame} -> {decoded.frame}")
    if not decoded.crc_ok:
        raise FrameError(f"roundtrip CRC failure for {frame}")
    return decoded

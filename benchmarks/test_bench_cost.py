"""Benchmark E5 — the Section V.E cost & capability comparison.

Analytical costs, detection head-to-head on identical captures, and the
unseen-ID blindness demonstration.  Asserted shape:

* our memory cost is constant (11 slots) vs. linear for the
  alternatives — two orders of magnitude on the 223-ID catalog;
* on catalog-ID injection, ours detects at least as well as every
  baseline that lacks bit-level information;
* on unseen-ID injection, the interval and clock-skew schemes are blind
  while the bit-entropy IDS still detects.
"""

import pytest

from repro.experiments import cost as cost_experiment
from repro.metrics.cost import compare_costs


@pytest.fixture(scope="module")
def result(setup, seeds):
    return cost_experiment.run(setup=setup, seeds=seeds)


def test_bench_cost(benchmark, setup, seeds):
    """Time the comparison campaign and print all three tables."""
    outcome = benchmark.pedantic(
        lambda: cost_experiment.run(setup=setup, seeds=seeds), rounds=1, iterations=1
    )
    text = outcome.render()
    print("\n" + text)
    benchmark.extra_info["tables"] = text
    from conftest import save_artifact
    save_artifact("cost", text)


class TestCostShape:
    def test_constant_vs_linear_memory(self):
        models = {m.name: m for m in compare_costs(223)}
        ours = models["bit-entropy (this paper)"].memory_slots
        assert ours == 11
        assert models["ID-entropy (Muter [8])"].memory_slots == 223
        assert models["interval (Song [11])"].memory_slots == 446

    def test_ours_detects_well_head_to_head(self, result):
        ours = result.head_to_head["bit-entropy (ours)"]
        assert ours["detection_rate"] > 0.9
        assert ours["false_positive_rate"] <= 0.05

    def test_ours_beats_muter_scalar_entropy(self, result):
        """Bit-level entropy beats the whole-distribution scalar — the
        paper's core improvement claim over [8]."""
        ours = result.head_to_head["bit-entropy (ours)"]["detection_rate"]
        muter = result.head_to_head["muter-entropy"]["detection_rate"]
        assert ours >= muter

    def test_interval_blind_to_unseen_id(self, result):
        assert result.unseen_id_detection["interval"] == 0.0

    def test_clock_skew_blind_to_unseen_id(self, result):
        assert result.unseen_id_detection["clock-skew"] == 0.0

    def test_ours_detects_unseen_id(self, result):
        assert result.unseen_id_detection["bit-entropy (ours)"] > 0.9

    def test_unseen_id_not_in_catalog(self, result, setup):
        assert result.unseen_id not in setup.catalog.id_set()

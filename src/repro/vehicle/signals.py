"""Payload generators for synthetic vehicle messages.

The entropy IDS of the paper never looks at payload bytes — its input is
the identifier field — but a credible vehicle substrate should still emit
realistic payloads: rolling counters, slowly-varying quantized sensor
channels, sparse status flags, and a simple XOR end-byte checksum, all of
which appear in production DBCs.

Generators return a callable mapping the per-message sequence number to
payload bytes, the contract of :class:`repro.can.MessageSpec`.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.exceptions import BusConfigError

PayloadFn = Callable[[int], bytes]


def rolling_counter(dlc: int = 8) -> PayloadFn:
    """A big-endian message counter occupying the whole payload."""
    if not 0 <= dlc <= 8:
        raise BusConfigError(f"dlc must be 0..8, got {dlc}")

    def generate(seq: int) -> bytes:
        if dlc == 0:
            return b""
        return (seq % (1 << (8 * dlc))).to_bytes(dlc, "big")

    return generate


def sensor_channel(
    dlc: int = 8,
    period_messages: float = 200.0,
    noise: float = 2.0,
    seed: int = 0,
) -> PayloadFn:
    """A quantized sinusoidal sensor value plus noise and a counter byte.

    Byte 0 carries a 4-bit rolling counter and 4 flag bits; bytes 1..2 a
    16-bit sensor sample; remaining bytes mirror the sample with lag,
    mimicking multiplexed channels.
    """
    if not 1 <= dlc <= 8:
        raise BusConfigError(f"dlc must be 1..8, got {dlc}")
    rng = np.random.default_rng(seed)

    def generate(seq: int) -> bytes:
        sample = 0x7FFF + int(
            0x6000 * math.sin(2 * math.pi * seq / period_messages)
            + rng.normal(0.0, noise) * 256
        )
        sample = max(0, min(0xFFFF, sample))
        out = bytearray(dlc)
        out[0] = (seq % 16) << 4 | (seq // 64) % 16
        if dlc >= 3:
            out[1] = (sample >> 8) & 0xFF
            out[2] = sample & 0xFF
        for i in range(3, dlc):
            lagged = max(0, sample - (i - 2) * 17)
            out[i] = (lagged >> 4) & 0xFF
        return bytes(out)

    return generate


def status_flags(dlc: int = 2, toggle_every: int = 50, seed: int = 0) -> PayloadFn:
    """Sparse status bits that toggle rarely (doors, lights, gear)."""
    if not 1 <= dlc <= 8:
        raise BusConfigError(f"dlc must be 1..8, got {dlc}")
    rng = np.random.default_rng(seed)
    mask = 0
    for _byte in range(dlc):
        mask = (mask << 8) | int(rng.integers(0, 256))

    def generate(seq: int) -> bytes:
        epoch = seq // max(1, toggle_every)
        # Deterministic per-epoch flag pattern derived from the seed mask.
        value = (mask ^ (0x9E3779B97F4A7C15 * (epoch + 1))) & ((1 << (8 * dlc)) - 1)
        return value.to_bytes(dlc, "big")

    return generate


def with_checksum(inner: PayloadFn) -> PayloadFn:
    """Wrap a generator so the last byte becomes an XOR checksum."""

    def generate(seq: int) -> bytes:
        payload = bytearray(inner(seq))
        if not payload:
            return b""
        checksum = 0
        for byte in payload[:-1]:
            checksum ^= byte
        payload[-1] = checksum
        return bytes(payload)

    return generate


def default_payload_for(
    cluster: str, dlc: int, seed: int = 0
) -> PayloadFn:
    """Pick a realistic generator for a catalog cluster."""
    if cluster in ("powertrain", "chassis"):
        return with_checksum(sensor_channel(dlc=max(1, dlc), seed=seed))
    if cluster in ("body", "comfort"):
        return status_flags(dlc=max(1, dlc), seed=seed)
    return rolling_counter(dlc=dlc)

"""Statistical utilities used by the experiments.

* :mod:`repro.analysis.rolling` — numerically stable online statistics
  (Welford) and fixed-size rolling aggregates, useful for long-running
  monitors that must not grow memory;
* :mod:`repro.analysis.bootstrap` — nonparametric bootstrap confidence
  intervals for the evaluation's rate estimates (detection rates from a
  handful of seeds deserve error bars).
"""

from repro.analysis.bootstrap import bootstrap_ci, bootstrap_rate_ci
from repro.analysis.rolling import OnlineStats, RollingWindowStats

__all__ = [
    "OnlineStats",
    "RollingWindowStats",
    "bootstrap_ci",
    "bootstrap_rate_ci",
]

"""Bus nodes (ECUs).

A :class:`Node` is anything that can contend for the bus.  The bus drives
nodes through a small pull-style protocol:

* :meth:`Node.next_release` — when is your earliest pending frame ready?
* :meth:`Node.peek` — which frame would you send right now?
* :meth:`Node.on_win` / :meth:`Node.on_loss` / :meth:`Node.on_error` —
  outcome callbacks after each arbitration round.

:class:`PeriodicECU` models a legitimate ECU: a set of periodic messages
(with offset and jitter) plus optional event-driven messages with Poisson
arrivals.  Lost arbitration keeps the frame pending — legitimate
controllers retransmit — while attackers (see :mod:`repro.attacks`)
override :meth:`on_loss` to drop, which is what makes the paper's
*injection rate* (wins over attempts) a meaningful quantity.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.can.constants import SECOND_US
from repro.can.errors import ErrorCounters
from repro.can.frame import CANFrame
from repro.exceptions import BusConfigError, NodeStateError

PayloadFn = Callable[[int], bytes]


def counter_payload(dlc: int = 8) -> PayloadFn:
    """Default payload generator: a big-endian message counter.

    Real ECUs typically carry rolling counters and slowly-varying sensor
    values; a counter keeps payload bits exercised without mattering to
    the ID-based IDS.
    """
    if not 0 <= dlc <= 8:
        raise BusConfigError(f"dlc must be 0..8, got {dlc}")

    def generate(seq: int) -> bytes:
        return (seq % (1 << (8 * dlc))).to_bytes(dlc, "big") if dlc else b""

    return generate


@dataclass
class MessageSpec:
    """One message a node is responsible for.

    Exactly one of ``period_us`` (periodic message) or ``rate_hz``
    (event-driven message with exponential inter-arrivals) must be set.

    Parameters
    ----------
    can_id:
        Identifier used on the wire.
    period_us:
        Nominal period for periodic messages.
    rate_hz:
        Mean arrival rate for event-driven messages.
    offset_us:
        Release time of the first instance.
    jitter_frac:
        Gaussian jitter applied to each period, as a fraction of the
        period (clipped to +-3 sigma and to a minimum of one tenth of
        the period so schedules stay sane).
    payload_fn:
        Maps the per-message sequence number to payload bytes.
    extended:
        Use the 29-bit identifier format.
    """

    can_id: int
    period_us: Optional[int] = None
    rate_hz: Optional[float] = None
    offset_us: int = 0
    jitter_frac: float = 0.0
    payload_fn: PayloadFn = field(default_factory=counter_payload)
    extended: bool = False

    def __post_init__(self) -> None:
        if (self.period_us is None) == (self.rate_hz is None):
            raise BusConfigError(
                f"message 0x{self.can_id:X}: exactly one of period_us/rate_hz required"
            )
        if self.period_us is not None and self.period_us <= 0:
            raise BusConfigError(f"message 0x{self.can_id:X}: period must be positive")
        if self.rate_hz is not None and self.rate_hz <= 0:
            raise BusConfigError(f"message 0x{self.can_id:X}: rate must be positive")
        if self.offset_us < 0:
            raise BusConfigError(f"message 0x{self.can_id:X}: offset must be >= 0")
        if not 0.0 <= self.jitter_frac < 0.5:
            raise BusConfigError(
                f"message 0x{self.can_id:X}: jitter_frac must be in [0, 0.5)"
            )

    @property
    def is_periodic(self) -> bool:
        """True for fixed-period messages, False for event-driven ones."""
        return self.period_us is not None


class Node:
    """Base class for everything attached to the bus."""

    #: Ground-truth marker propagated into trace records.
    is_attacker: bool = False

    def __init__(self, name: str) -> None:
        if not name:
            raise BusConfigError("node name must be non-empty")
        self.name = name
        self.enabled = True
        self.disabled_reason: Optional[str] = None
        self.error_counters = ErrorCounters()
        #: Number of frames this node put on the wire successfully.
        self.tx_success = 0
        #: Number of arbitration rounds this node lost.
        self.tx_lost = 0
        #: Number of frames dropped by the transmitter filter.
        self.tx_filtered = 0
        #: Number of transmission errors suffered.
        self.tx_errors = 0

    # -- scheduling interface -------------------------------------------------
    def next_release(self) -> Optional[int]:
        """Earliest time (us) a frame is pending, or None when idle."""
        raise NotImplementedError

    def peek(self) -> CANFrame:
        """The frame this node would contend with right now."""
        raise NotImplementedError

    # -- outcome callbacks ----------------------------------------------------
    def on_win(self, t_us: int) -> None:
        """Called when the pending frame completed successfully."""
        self.tx_success += 1
        self.error_counters.on_tx_success()

    def on_loss(self, t_us: int) -> None:
        """Called when the node lost arbitration.

        The default (legitimate-controller) behaviour keeps the frame
        pending so it re-contends at the next bus-idle point.
        """
        self.tx_lost += 1

    def on_error(self, t_us: int) -> None:
        """Called when the transmission was hit by an injected error.

        The frame stays pending (automatic retransmission); the transmit
        error counter increases per ISO 11898 fault confinement.
        """
        self.tx_errors += 1
        self.error_counters.on_tx_error()

    def on_filtered(self, t_us: int) -> None:
        """Called when the transmitter filter rejected the pending frame.

        Default: count and drop the frame (advance past it).  Subclasses
        whose scheduling state must advance override this.
        """
        self.tx_filtered += 1

    # -- administrative -------------------------------------------------------
    def disable(self, reason: str) -> None:
        """Take the node off the bus (guard shutdown, bus-off, ...)."""
        self.enabled = False
        self.disabled_reason = reason

    def reset(self) -> None:
        """Re-enable a disabled node and clear its error state."""
        self.enabled = True
        self.disabled_reason = None
        self.error_counters = ErrorCounters()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "up" if self.enabled else f"down({self.disabled_reason})"
        return f"<{type(self).__name__} {self.name} {state}>"


class PeriodicECU(Node):
    """A legitimate ECU transmitting periodic and event-driven messages."""

    def __init__(
        self,
        name: str,
        messages: Sequence[MessageSpec],
        seed: int = 0,
    ) -> None:
        super().__init__(name)
        if not messages:
            raise BusConfigError(f"ECU {name} needs at least one message")
        self._messages: List[MessageSpec] = list(messages)
        self._rng = np.random.default_rng(seed)
        self._seq: Dict[int, int] = {i: 0 for i in range(len(self._messages))}
        # Heap entries: (release_us, can_id, msg_index).  The can_id in the
        # key makes a node with a backlog offer its highest-priority frame
        # first, like a controller with priority-sorted transmit buffers.
        self._heap: List[Tuple[int, int, int]] = []
        for index, spec in enumerate(self._messages):
            first = spec.offset_us + self._first_delay(spec)
            heapq.heappush(self._heap, (first, spec.can_id, index))

    # -- schedule generation ----------------------------------------------
    def _first_delay(self, spec: MessageSpec) -> int:
        if spec.is_periodic:
            return 0
        return self._exponential_us(spec.rate_hz)

    def _exponential_us(self, rate_hz: float) -> int:
        return max(1, int(self._rng.exponential(SECOND_US / rate_hz)))

    def _next_period(self, spec: MessageSpec) -> int:
        period = spec.period_us
        if spec.jitter_frac:
            sigma = spec.jitter_frac * period
            delta = float(np.clip(self._rng.normal(0.0, sigma), -3 * sigma, 3 * sigma))
            period = max(period // 10, int(round(period + delta)))
        return period

    def _advance(self, index: int, release_us: int) -> None:
        spec = self._messages[index]
        if spec.is_periodic:
            nxt = release_us + self._next_period(spec)
        else:
            nxt = release_us + self._exponential_us(spec.rate_hz)
        heapq.heappush(self._heap, (nxt, spec.can_id, index))

    # -- Node interface -----------------------------------------------------
    def next_release(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None

    def peek(self) -> CANFrame:
        if not self._heap:
            raise NodeStateError(f"ECU {self.name} has no pending frame")
        _release, _can_id, index = self._heap[0]
        spec = self._messages[index]
        payload = spec.payload_fn(self._seq[index])
        return CANFrame(spec.can_id, payload, extended=spec.extended)

    def on_win(self, t_us: int) -> None:
        super().on_win(t_us)
        release, _can_id, index = heapq.heappop(self._heap)
        self._seq[index] += 1
        self._advance(index, release)

    def on_filtered(self, t_us: int) -> None:
        super().on_filtered(t_us)
        release, _can_id, index = heapq.heappop(self._heap)
        self._advance(index, release)

    @property
    def message_specs(self) -> Tuple[MessageSpec, ...]:
        """The message set this ECU owns (read-only view)."""
        return tuple(self._messages)

    def assigned_ids(self) -> frozenset:
        """The identifier set legitimately assigned to this ECU."""
        return frozenset(spec.can_id for spec in self._messages)

"""Fault confinement counters."""

from repro.can.errors import BUS_OFF_LIMIT, ERROR_PASSIVE_LIMIT, ErrorCounters, ErrorState


class TestStates:
    def test_fresh_controller_is_error_active(self):
        assert ErrorCounters().state is ErrorState.ERROR_ACTIVE

    def test_error_passive_on_tec(self):
        counters = ErrorCounters(tec=ERROR_PASSIVE_LIMIT)
        assert counters.state is ErrorState.ERROR_PASSIVE

    def test_error_passive_on_rec(self):
        counters = ErrorCounters(rec=ERROR_PASSIVE_LIMIT)
        assert counters.state is ErrorState.ERROR_PASSIVE

    def test_bus_off_above_limit(self):
        counters = ErrorCounters(tec=BUS_OFF_LIMIT + 1)
        assert counters.state is ErrorState.BUS_OFF
        assert counters.bus_off

    def test_bus_off_requires_strictly_above(self):
        assert not ErrorCounters(tec=BUS_OFF_LIMIT).bus_off


class TestTransitions:
    def test_tx_error_adds_eight(self):
        counters = ErrorCounters()
        counters.on_tx_error()
        assert counters.tec == 8

    def test_tx_success_subtracts_one_floored(self):
        counters = ErrorCounters()
        counters.on_tx_success()
        assert counters.tec == 0
        counters.on_tx_error()
        counters.on_tx_success()
        assert counters.tec == 7

    def test_rx_counters(self):
        counters = ErrorCounters()
        counters.on_rx_error()
        assert counters.rec == 1
        counters.on_rx_success()
        assert counters.rec == 0
        counters.on_rx_success()
        assert counters.rec == 0

    def test_sustained_errors_reach_bus_off(self):
        counters = ErrorCounters()
        for _ in range(32):
            counters.on_tx_error()
        assert counters.bus_off

    def test_recovery_pattern(self):
        # 1 error per 8 successes keeps TEC bounded (8 - 8 = 0 net).
        counters = ErrorCounters()
        for _ in range(50):
            counters.on_tx_error()
            for _ in range(8):
                counters.on_tx_success()
        assert counters.state is ErrorState.ERROR_ACTIVE

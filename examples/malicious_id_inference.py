#!/usr/bin/env python
"""Malicious-ID inference: from entropy shifts back to the injected IDs.

Demonstrates Section V.C of the paper on the hardest interesting case —
a multi-ID injection — and shows the intermediate evidence the engine
derives:

* hard direction constraints (which bits shifted, which way);
* the estimated injected fraction of the traffic;
* the estimated bit composition of the injected identifier set;
* the reconstructed identifier set with fitted success shares (members
  win arbitration at different rates — the reconstruction accounts for
  that);
* the final rank-10 candidate list and its hit rate.

Run:  python examples/malicious_id_inference.py
"""

import numpy as np

from repro.attacks import MultiIDAttacker
from repro.experiments import build_setup
from repro.vehicle import VehicleSimulation


def main() -> None:
    setup = build_setup()
    catalog = setup.catalog

    injected = [catalog.ids[45], catalog.ids[110], catalog.ids[170]]
    print("injected identifiers (ground truth):",
          ", ".join(f"0x{i:03X}" for i in injected))

    sim = VehicleSimulation(catalog=catalog, scenario="city", seed=23)
    attacker = MultiIDAttacker(
        injected, frequency_hz=50.0, start_s=2.0, duration_s=10.0, seed=4
    )
    sim.add_node(attacker)
    trace = sim.run(14.0)
    print(f"capture: {len(trace)} frames, {trace.attack_count} injected\n")

    report = setup.pipeline.analyze(trace, infer_k=len(injected))
    inference = report.inference
    if inference is None:
        print("no alarm raised — nothing to infer")
        return

    print(f"alarmed windows: {len(report.alarmed_windows)}")
    constraints = ", ".join(
        f"bit{b}={v}" for b, v in sorted(inference.constraints.items())
    ) or "(none)"
    print(f"direction constraints: {constraints}")
    print(f"estimated injected fraction: {inference.injected_fraction:.1%}")
    print("estimated composition:",
          np.array2string(inference.composition, precision=2, suppress_small=True))

    print("\nreconstructed set (with fitted success shares):")
    for can_id, share in zip(inference.best_set, inference.member_shares):
        marker = "<- true member" if can_id in injected else ""
        print(f"  0x{can_id:03X}  share {share:.2f}  {marker}")

    print("\nrank-10 candidates:",
          ", ".join(f"0x{c:03X}" for c in inference.candidates))
    print(f"hit rate vs ground truth: {inference.hit_rate(injected):.0%}")


if __name__ == "__main__":
    main()

"""The benchmark regression guard (``repro.experiments.bench_guard``)."""

import json

import pytest

from repro.experiments.bench import bench_record, write_bench_json
from repro.experiments.bench_guard import compare_files, main, run_guard


def _write(path, records):
    path.parent.mkdir(parents=True, exist_ok=True)
    write_bench_json(path, records)


@pytest.fixture()
def dirs(tmp_path):
    base = tmp_path / "baseline"
    fresh = tmp_path / "fresh"
    base.mkdir()
    fresh.mkdir()
    return base, fresh


def _records(rate=100.0, parity=1.0, params=None):
    params = params or {"n_frames": 1000}
    return [
        bench_record("codec", "scan_mps", rate, "msg/s", params),
        bench_record("codec", "parity_ok", parity, "bool", params),
    ]


class TestCompare:
    def test_identical_runs_are_clean(self, dirs):
        base, fresh = dirs
        _write(base / "BENCH_x.json", _records())
        _write(fresh / "BENCH_x.json", _records())
        assert run_guard(base, fresh) == []

    def test_parity_flip_fails_even_with_huge_tolerance(self, dirs):
        base, fresh = dirs
        _write(base / "BENCH_x.json", _records(parity=1.0))
        _write(fresh / "BENCH_x.json", _records(parity=0.0))
        findings = run_guard(base, fresh, tolerance=10.0)
        assert [f.level for f in findings] == ["fail"]
        assert "parity" in findings[0].message

    def test_rate_drift_warns_by_default(self, dirs):
        base, fresh = dirs
        _write(base / "BENCH_x.json", _records(rate=100.0))
        _write(fresh / "BENCH_x.json", _records(rate=10.0))
        findings = run_guard(base, fresh)
        assert [f.level for f in findings] == ["warn"]
        assert "drift" in findings[0].message

    def test_rate_drift_fails_in_strict_mode(self, dirs):
        base, fresh = dirs
        _write(base / "BENCH_x.json", _records(rate=100.0))
        _write(fresh / "BENCH_x.json", _records(rate=10.0))
        findings = run_guard(base, fresh, strict=True)
        assert [f.level for f in findings] == ["fail"]

    def test_drift_within_tolerance_is_clean(self, dirs):
        base, fresh = dirs
        _write(base / "BENCH_x.json", _records(rate=100.0))
        _write(fresh / "BENCH_x.json", _records(rate=110.0))
        assert run_guard(base, fresh, tolerance=0.25) == []

    def test_missing_metric_fails(self, dirs):
        base, fresh = dirs
        _write(base / "BENCH_x.json", _records())
        _write(
            fresh / "BENCH_x.json",
            [bench_record("codec", "parity_ok", 1.0, "bool",
                          {"n_frames": 1000})],
        )
        findings = run_guard(base, fresh)
        assert [f.level for f in findings] == ["fail"]
        assert "missing" in findings[0].message

    def test_missing_file_fails(self, dirs):
        base, fresh = dirs
        _write(base / "BENCH_x.json", _records())
        findings = run_guard(base, fresh)
        assert [f.level for f in findings] == ["fail"]
        assert "no such results file" in findings[0].message

    def test_different_sizing_params_skipped(self, dirs):
        base, fresh = dirs
        _write(base / "BENCH_x.json", _records(params={"n_frames": 1000}))
        _write(
            fresh / "BENCH_x.json",
            _records(rate=5.0, parity=0.0, params={"n_frames": 10}),
        )
        findings = run_guard(base, fresh)
        assert {f.level for f in findings} == {"skip"}

    def test_empty_baseline_dir_fails(self, dirs):
        base, fresh = dirs
        findings = run_guard(base, fresh)
        assert [f.level for f in findings] == ["fail"]

    def test_compare_files_extra_fresh_metrics_ignored(self, dirs):
        """New metrics in the fresh run are fine — the guard protects
        the committed baseline, not the other direction."""
        base, fresh = dirs
        _write(base / "BENCH_x.json", _records())
        _write(
            fresh / "BENCH_x.json",
            _records()
            + [bench_record("codec", "new_metric", 1.0, "x", {})],
        )
        assert list(
            compare_files(base / "BENCH_x.json", fresh / "BENCH_x.json")
        ) == []


class TestMain:
    def test_exit_zero_on_warnings(self, dirs, capsys):
        base, fresh = dirs
        _write(base / "BENCH_x.json", _records(rate=100.0))
        _write(fresh / "BENCH_x.json", _records(rate=10.0))
        code = main(["--baseline", str(base), "--fresh", str(fresh)])
        out = capsys.readouterr().out
        assert code == 0
        assert "[WARN]" in out and "1 warning(s)" in out

    def test_exit_one_on_failure(self, dirs, capsys):
        base, fresh = dirs
        _write(base / "BENCH_x.json", _records(parity=1.0))
        _write(fresh / "BENCH_x.json", _records(parity=0.0))
        code = main(["--baseline", str(base), "--fresh", str(fresh)])
        assert code == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_strict_flag(self, dirs):
        base, fresh = dirs
        _write(base / "BENCH_x.json", _records(rate=100.0))
        _write(fresh / "BENCH_x.json", _records(rate=10.0))
        assert main(
            ["--baseline", str(base), "--fresh", str(fresh), "--strict"]
        ) == 1

"""Shared column accumulator for the columnar log readers.

The candump and CSV readers both parse text into the same five per-frame
fields; :class:`ColumnBuilder` accumulates those fields in plain Python
lists (the cheapest append path) and finishes them into a
:class:`~repro.io.columnar.ColumnTrace` with a handful of batch
conversions: one ``bytes.fromhex`` over the concatenated payload hex,
one ``np.cumsum`` for the offsets, one array build per column.  No
:class:`~repro.io.trace.TraceRecord` is ever allocated, which is where
the record readers spend most of their time.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.exceptions import TraceFormatError
from repro.io.columnar import ColumnTrace

__all__ = ["ColumnBuilder", "rechunk_parts"]


def rechunk_parts(
    parts: Iterable[ColumnTrace], chunk_frames: int
) -> Iterator[ColumnTrace]:
    """Re-slice a stream of time-ordered parts into exact-size chunks.

    The streaming readers parse whatever frame count a byte block
    happens to hold; this adapter restores the chunked-reader contract
    (every chunk except the last has exactly ``chunk_frames`` frames)
    without ever buffering more than one chunk plus one part.  Slices
    are zero-copy views; a merge only happens when a chunk spans parts.
    """
    pending: List[ColumnTrace] = []
    count = 0
    for part in parts:
        pending.append(part)
        count += len(part)
        while count >= chunk_frames:
            merged = pending[0] if len(pending) == 1 else ColumnTrace.merge(*pending)
            yield merged.slice(0, chunk_frames)
            merged = merged.slice(chunk_frames, count)
            count = len(merged)
            pending = [merged] if count else []
    if count:
        yield pending[0] if len(pending) == 1 else ColumnTrace.merge(*pending)


class ColumnBuilder:
    """Accumulates parsed frame fields, then builds a :class:`ColumnTrace`.

    ``append`` takes already-validated scalar fields plus the payload as
    an even-length hex string (hex decoding is deferred and batched).
    ``lineno`` is kept per frame so :meth:`build` can point error
    messages at the offending input line.
    """

    __slots__ = (
        "times", "ids", "ext", "att", "codes", "hex_parts", "linenos", "_intern"
    )

    def __init__(self) -> None:
        self.times: List[int] = []
        self.ids: List[int] = []
        self.ext: List[bool] = []
        self.att: List[bool] = []
        self.codes: List[int] = []
        self.hex_parts: List[str] = []
        self.linenos: List[int] = []
        self._intern: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.times)

    def append(
        self,
        timestamp_us: int,
        can_id: int,
        data_hex: str,
        extended: bool,
        source: str,
        is_attack: bool,
        lineno: int,
    ) -> None:
        self.times.append(timestamp_us)
        self.ids.append(can_id)
        self.hex_parts.append(data_hex)
        self.ext.append(extended)
        self.att.append(is_attack)
        code = self._intern.get(source)
        if code is None:
            code = self._intern.setdefault(source, len(self._intern))
        self.codes.append(code)
        self.linenos.append(lineno)

    # ------------------------------------------------------------------
    def build(
        self, path: object = None, last_timestamp_us: Optional[int] = None
    ) -> ColumnTrace:
        """Finish the accumulated frames into a :class:`ColumnTrace`.

        ``last_timestamp_us`` carries the final timestamp of the
        previous chunk so chunked readers enforce monotonicity across
        chunk boundaries too.
        """
        n = len(self.times)
        timestamp_us = np.asarray(self.times, dtype=np.int64)
        if n:
            steps = np.diff(timestamp_us)
            if np.any(steps < 0):
                at = int(np.argmax(steps < 0)) + 1
                raise TraceFormatError(
                    f"{path}:{self.linenos[at]}: timestamp goes backwards; "
                    f"traces must be time-ordered"
                )
            if last_timestamp_us is not None and self.times[0] < last_timestamp_us:
                raise TraceFormatError(
                    f"{path}:{self.linenos[0]}: timestamp goes backwards across "
                    f"a chunk boundary; traces must be time-ordered"
                )
        try:
            payload_bytes = bytes.fromhex("".join(self.hex_parts))
        except ValueError:
            for lineno, part in zip(self.linenos, self.hex_parts):
                try:
                    bytes.fromhex(part)
                except ValueError as exc:
                    raise TraceFormatError(
                        f"{path}:{lineno}: bad payload hex {part!r}"
                    ) from exc
            raise  # pragma: no cover - per-part scan always locates it
        offsets = np.zeros(n + 1, dtype=np.int64)
        if n:
            np.cumsum(
                np.fromiter((len(h) >> 1 for h in self.hex_parts), np.int64, n),
                out=offsets[1:],
            )
        return ColumnTrace(
            timestamp_us,
            np.asarray(self.ids, dtype=np.int64),
            payload=np.frombuffer(payload_bytes, dtype=np.uint8),
            payload_offsets=offsets,
            extended=np.asarray(self.ext, dtype=bool),
            is_attack=np.asarray(self.att, dtype=bool),
            source_code=np.asarray(self.codes, dtype=np.int32),
            source_table=tuple(self._intern) if self._intern else ("",),
            validate=False,
        )

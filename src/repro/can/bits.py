"""Bit-level encoding of CAN frames: ID bits, CRC-15, bit stuffing.

The intrusion detection method of the paper operates on the individual
bits of the identifier field, and the arbitration argument ("0 dominates
1") is a bit-level property, so the simulator keeps an explicit bit-vector
representation of frames.  Bits are plain Python ``int`` 0/1 in tuples,
most significant first, which keeps them hashable and directly comparable
(``min`` over bit tuples is exactly dominant-0 arbitration).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.can.constants import (
    ACK_FIELD_BITS,
    CRC15_POLY,
    CRC_BITS,
    EOF_BITS,
    MAX_DLC,
    STUFF_RUN,
)
from repro.exceptions import FrameError

Bits = Tuple[int, ...]


def id_bits(can_id: int, width: int) -> Bits:
    """Return ``can_id`` as a tuple of ``width`` bits, MSB first.

    >>> id_bits(0b101, 4)
    (0, 1, 0, 1)
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if can_id < 0 or can_id >= (1 << width):
        raise FrameError(f"identifier 0x{can_id:X} does not fit in {width} bits")
    return tuple((can_id >> shift) & 1 for shift in range(width - 1, -1, -1))


def id_from_bits(bits: Sequence[int]) -> int:
    """Inverse of :func:`id_bits`: fold an MSB-first bit sequence to an int.

    >>> id_from_bits((0, 1, 0, 1))
    5
    """
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bit values must be 0 or 1, got {bit!r}")
        value = (value << 1) | bit
    return value


def byte_bits(data: bytes) -> Bits:
    """Return the bits of ``data``, each byte MSB first."""
    out: List[int] = []
    for byte in data:
        for shift in range(7, -1, -1):
            out.append((byte >> shift) & 1)
    return tuple(out)


def crc15(bits: Sequence[int]) -> int:
    """Compute the CAN CRC-15 over a bit sequence.

    Implements the shift-register algorithm from ISO 11898-1 with the
    generator polynomial ``0x4599``.
    """
    crc = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bit values must be 0 or 1, got {bit!r}")
        msb = (crc >> (CRC_BITS - 1)) & 1
        crc = (crc << 1) & ((1 << CRC_BITS) - 1)
        if bit ^ msb:
            crc ^= CRC15_POLY
    return crc


def stuff_bits(bits: Sequence[int]) -> Bits:
    """Insert a complement bit after every run of five equal bits.

    Stuff bits themselves participate in subsequent run counting, exactly
    as on the wire.

    >>> stuff_bits((0, 0, 0, 0, 0))
    (0, 0, 0, 0, 0, 1)
    """
    out: List[int] = []
    run_bit = -1
    run_len = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bit values must be 0 or 1, got {bit!r}")
        out.append(bit)
        if bit == run_bit:
            run_len += 1
        else:
            run_bit = bit
            run_len = 1
        if run_len == STUFF_RUN:
            stuffed = 1 - bit
            out.append(stuffed)
            run_bit = stuffed
            run_len = 1
    return tuple(out)


def unstuff_bits(bits: Sequence[int]) -> Bits:
    """Remove stuff bits inserted by :func:`stuff_bits`.

    Raises
    ------
    FrameError
        If a run of five equal bits is not followed by its complement
        (a stuff violation, which real controllers signal as a form error).
    """
    out: List[int] = []
    run_bit = -1
    run_len = 0
    i = 0
    n = len(bits)
    while i < n:
        bit = bits[i]
        out.append(bit)
        if bit == run_bit:
            run_len += 1
        else:
            run_bit = bit
            run_len = 1
        if run_len == STUFF_RUN:
            i += 1  # move onto the stuff bit
            if i < n:
                stuffed = bits[i]
                if stuffed == bit:
                    raise FrameError(f"stuff violation at bit {i}")
                # The stuff bit is consumed (not emitted) but seeds the
                # run tracking for the bits that follow it.
                run_bit = stuffed
                run_len = 1
                i += 1
            continue
        i += 1
    return tuple(out)


def _header_bits(can_id: int, extended: bool, rtr: bool, dlc: int) -> Bits:
    """SOF + arbitration + control field bits for a frame header."""
    if not 0 <= dlc <= MAX_DLC:
        raise FrameError(f"DLC must be 0..{MAX_DLC}, got {dlc}")
    dlc_bits = tuple((dlc >> shift) & 1 for shift in range(3, -1, -1))
    rtr_bit = 1 if rtr else 0
    if extended:
        base = id_bits(can_id >> 18, 11)
        ext = id_bits(can_id & ((1 << 18) - 1), 18)
        # SOF, 11-bit base ID, SRR (recessive), IDE (recessive), 18-bit
        # extension, RTR, r1, r0, DLC.
        return (0,) + base + (1, 1) + ext + (rtr_bit, 0, 0) + dlc_bits
    base = id_bits(can_id, 11)
    # SOF, 11-bit ID, RTR, IDE (dominant), r0, DLC.
    return (0,) + base + (rtr_bit, 0, 0) + dlc_bits


def frame_bitstream(
    can_id: int, data: bytes, extended: bool = False, rtr: bool = False
) -> Bits:
    """Return the stuffed bit sequence of the frame's stuffed region.

    The stuffed region runs from the start-of-frame bit through the CRC
    sequence; the CRC delimiter, ACK field and EOF are fixed-form and
    transmitted without stuffing.
    """
    header = _header_bits(can_id, extended, rtr, len(data))
    payload = () if rtr else byte_bits(data)
    body = header + payload
    crc = crc15(body)
    crc_field = tuple((crc >> shift) & 1 for shift in range(CRC_BITS - 1, -1, -1))
    return stuff_bits(body + crc_field)


def frame_wire_bits(
    can_id: int, data: bytes, extended: bool = False, rtr: bool = False
) -> int:
    """Total number of bits the frame occupies on the wire.

    Counts the stuffed region (with actual, not worst-case, stuff bits)
    plus the unstuffed CRC delimiter, ACK field and end-of-frame.  The
    3-bit interframe space is accounted separately by the bus.
    """
    stuffed = frame_bitstream(can_id, data, extended=extended, rtr=rtr)
    return len(stuffed) + ACK_FIELD_BITS + EOF_BITS

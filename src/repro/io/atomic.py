"""Atomic file writes shared by every persistence layer.

The fleet ledger, the fleet store's templates, the work-queue runtime's
task and result files — every on-disk artifact that another process (or
a crashed run's successor) may read concurrently is written the same
way: to a temp file in the destination directory, then ``os.replace``\\ d
into place.  A reader therefore only ever sees a complete file or no
file, never a torn one.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_text"]


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lands in the destination directory so the final
    ``os.replace`` is a same-filesystem rename — atomic on POSIX.  On
    any failure the temp file is removed and the destination is left
    untouched.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="ascii") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise

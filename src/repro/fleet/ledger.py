"""The persistent scan ledger: capture fingerprint -> cached report.

One-shot archive scanning re-reads and re-judges every capture on every
run; a fleet deployment scans the same months of captures daily with
only a handful of new files.  :class:`ScanLedger` is the persistence
layer that makes re-scans incremental: a JSON file mapping each
capture's *relative path* to its content fingerprint
(:func:`repro.io.fingerprint.fingerprint_file`) and the serialized
:class:`~repro.core.pipeline.DetectionReport` of its last scan.

Correctness properties:

* **keyed by content, not name** — an appended/replaced capture misses
  (fingerprint mismatch) and re-scans;
* **keyed by detection context** — the ledger stores a ``context`` key
  derived from the template, config and inference settings; a retrained
  template invalidates every entry at load time;
* **crash-safe** — :func:`atomic_write_text` writes a temp file in the
  same directory and ``os.replace``\\ s it over the ledger, so a killed
  watch run leaves either the old ledger or the new one, never a
  truncated hybrid; a ledger that *is* corrupt (partial write by a
  foreign tool, disk fault) is detected at load and rebuilt from
  scratch rather than trusted.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from repro.io.atomic import atomic_write_text

__all__ = ["ScanLedger", "atomic_write_text"]

#: On-disk schema version; bump on incompatible layout changes.
LEDGER_VERSION = 1


class ScanLedger:
    """JSON-on-disk cache of per-capture scan results.

    Parameters
    ----------
    path:
        The ledger file.  Missing is fine (fresh ledger); unreadable or
        corrupt content is *detected* and the ledger rebuilds empty
        (``rebuilt`` is set so callers can report it).
    context:
        Opaque string identifying the detection context (template +
        config + inference settings; see
        :func:`repro.fleet.watch.detection_context`).  A ledger written
        under a different context loads empty — cached verdicts from an
        old template must never answer for a new one.  Pass ``None`` to
        *adopt* whatever context the file already carries: maintenance
        operations (:meth:`compact`, ``repro-ids fleet prune``) work on
        a ledger without knowing the template that produced it, and must
        never wipe its entries just because they cannot recompute the
        context hash.

    ``hits`` / ``misses`` count :meth:`get` outcomes since construction,
    so incremental scans can assert exactly how much work the ledger
    saved (the watch tests do).  ``rebuilt`` is True whenever the file
    existed but loaded empty; ``rebuild_reason`` says why —
    ``"corrupt"`` (torn/foreign file: worth an operator's attention) or
    ``"context-changed"`` (retrained template or new settings: routine)
    — so the two cases stay distinguishable in scan output.
    """

    def __init__(
        self, path: Union[str, Path], context: Optional[str] = ""
    ) -> None:
        self.path = Path(path)
        self.context = context
        self.rebuild_reason: Optional[str] = None
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, dict] = {}
        self._load()
        if self.context is None:
            # Adoption mode found no usable file: behave like a fresh
            # ledger under the empty context.
            self.context = ""

    @property
    def rebuilt(self) -> bool:
        """True when an existing ledger file could not be used."""
        return self.rebuild_reason is not None

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            payload = json.loads(self.path.read_text(encoding="ascii"))
            if not isinstance(payload, dict):
                raise ValueError("ledger root is not an object")
            if payload.get("version") != LEDGER_VERSION:
                raise ValueError("ledger schema version mismatch")
            entries = payload["entries"]
            if not isinstance(entries, dict) or any(
                not isinstance(e, dict) or "fingerprint" not in e or "report" not in e
                for e in entries.values()
            ):
                raise ValueError("ledger entries malformed")
        except (ValueError, KeyError, OSError):
            # Truncated/corrupt/foreign file: rebuild rather than trust.
            self.rebuild_reason = "corrupt"
            return
        if self.context is None:
            # Adoption mode (maintenance tools): keep the file's own
            # context so a later save never silently re-keys the ledger.
            self.context = str(payload.get("context", ""))
        elif payload.get("context") != self.context:
            # Valid file, different detection context (e.g. retrained
            # template): every cached verdict is stale.
            self.rebuild_reason = "context-changed"
            return
        self._entries = entries

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, rel_path: str) -> bool:
        return rel_path in self._entries

    def keys(self) -> Iterable[str]:
        """The ledgered capture paths (relative, POSIX separators)."""
        return self._entries.keys()

    def get(self, rel_path: str, fingerprint: str) -> Optional[dict]:
        """The cached report dict for a capture, or None on miss.

        A hit requires both the path *and* the content fingerprint to
        match; a re-recorded capture under the same name misses.
        """
        entry = self._entries.get(rel_path)
        if entry is not None and entry["fingerprint"] == fingerprint:
            self.hits += 1
            return entry["report"]
        self.misses += 1
        return None

    def put(self, rel_path: str, fingerprint: str, report: dict) -> None:
        """Record (or replace) a capture's scan result."""
        self._entries[rel_path] = {"fingerprint": fingerprint, "report": report}

    def prune(self, keep: Iterable[str]) -> int:
        """Drop entries for captures no longer in the archive."""
        keep_set = set(keep)
        stale = [k for k in self._entries if k not in keep_set]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def compact(self, archive) -> int:
        """Drop entries whose capture files left ``archive``, and save.

        ``archive`` is a :class:`~repro.io.archive.CaptureArchive` (or a
        directory path).  Watch scans prune as a side effect, but a
        vehicle whose captures are rotated out between scans would grow
        its ledger forever; this is the standalone maintenance pass
        (``repro-ids fleet prune``, and each watch-daemon cycle).  The
        ledger is only rewritten when something was actually pruned, so
        compacting a corrupt file never destroys evidence by saving the
        rebuilt-empty state over it.  Returns the number of entries
        dropped.
        """
        from repro.io.archive import CaptureArchive  # cycle-free import

        if not isinstance(archive, CaptureArchive):
            archive = CaptureArchive(archive)
        keep = [
            p.relative_to(archive.directory).as_posix() for p in archive.paths
        ]
        pruned = self.prune(keep)
        if pruned:
            self.save()
        return pruned

    # ------------------------------------------------------------------
    def save(self) -> None:
        """Persist the ledger atomically (crash leaves old or new file)."""
        payload = {
            "version": LEDGER_VERSION,
            "context": self.context,
            "entries": self._entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.path, json.dumps(payload))

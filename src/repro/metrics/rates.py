"""The paper's rate metrics (Section V.B).

* **Injection rate** ``Ir`` — "the proportion of successfully injected
  messages on the bus over the total number of messages the malicious
  ECU sends to compete for the bus arbitration".
* **Detection rate** ``Dr`` — "the proportion of successfully detected
  injected messages over the total number of injected".  The IDS judges
  windows, so an alarmed window detects every injected message in it.
* **Hit rate** — for inference: the true malicious identifier(s) found
  within the rank-``n`` candidate set.
* ``Nm = Ir x f x T0`` — the successfully injected message count the
  paper derives; :func:`expected_injected` computes it for cross-checks.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Union

from repro.exceptions import ReproError


def injection_rate(wins: int, attempts: int) -> float:
    """``Ir = wins / attempts``; 0 for a passive attacker."""
    if wins < 0 or attempts < 0:
        raise ReproError("wins and attempts must be non-negative")
    if wins > attempts:
        raise ReproError(f"wins ({wins}) cannot exceed attempts ({attempts})")
    return wins / attempts if attempts else 0.0


def detection_rate(windows: Iterable) -> float:
    """``Dr`` over window results (core or baseline verdicts).

    Accepts any objects exposing ``judged``, ``alarm`` and
    ``n_attack_messages`` — both :class:`repro.core.WindowResult` and
    :class:`repro.baselines.BaselineVerdict` qualify.
    """
    total = 0
    detected = 0
    for window in windows:
        if not window.judged:
            continue
        total += window.n_attack_messages
        if window.alarm:
            detected += window.n_attack_messages
    return detected / total if total else 0.0


def hit_rate(candidates: Sequence[int], true_ids: Union[Set[int], Sequence[int]]) -> float:
    """Recovered fraction of the true injected identifiers.

    The paper's rank selection marks a detection as a *hit* when the
    malicious identifier appears among the first ``rank`` candidates;
    with several injected identifiers this generalises to the recovered
    fraction.
    """
    truth = set(true_ids)
    if not truth:
        raise ReproError("hit_rate needs a non-empty truth set")
    return len(truth.intersection(candidates)) / len(truth)


def expected_injected(ir: float, frequency_hz: float, duration_s: float) -> float:
    """The paper's ``Nm = Ir x f x T0``."""
    if not 0.0 <= ir <= 1.0:
        raise ReproError(f"injection rate must be in [0, 1], got {ir}")
    if frequency_hz < 0 or duration_s < 0:
        raise ReproError("frequency and duration must be non-negative")
    return ir * frequency_hz * duration_s

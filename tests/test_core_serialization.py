"""Report serialisation: dict round trips must be lossless.

The fleet ledger replays persisted reports in place of fresh scans, so
``from_dict(json.loads(json.dumps(to_dict())))`` must reproduce every
field *bit for bit* — float equality here is exact equality, not
approximation (JSON floats are shortest-repr round trips of float64).
"""

import json

import numpy as np
import pytest

from repro.attacks import SingleIDAttacker
from repro.core import (
    Alert,
    ArchiveReport,
    DetectionReport,
    IDSPipeline,
    InferenceResult,
    WindowResult,
)
from repro.exceptions import DetectorError
from repro.vehicle import VehicleSimulation


@pytest.fixture(scope="module")
def attack_report(golden_template, ids_config, catalog):
    """A report with judged windows, alarms, alerts and inference."""
    sim = VehicleSimulation(catalog=catalog, scenario="city", seed=5)
    sim.add_node(
        SingleIDAttacker(
            can_id=catalog.ids[60], frequency_hz=100.0,
            start_s=1.0, duration_s=5.0, seed=5,
        )
    )
    trace = sim.run(8.0)
    pipeline = IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)
    return pipeline.analyze(trace.to_columns())


def roundtrip(payload):
    """Through actual JSON text, exactly as the ledger stores it."""
    return json.loads(json.dumps(payload))


def assert_window_identical(a: WindowResult, b: WindowResult):
    assert a.index == b.index
    assert a.t_start_us == b.t_start_us and a.t_end_us == b.t_end_us
    assert a.n_messages == b.n_messages
    assert a.n_attack_messages == b.n_attack_messages
    assert np.array_equal(a.probabilities, b.probabilities)
    assert np.array_equal(a.entropy, b.entropy)
    assert np.array_equal(a.deviations, b.deviations)
    assert np.array_equal(a.violated, b.violated)
    assert a.judged == b.judged
    assert a.probabilities.dtype == b.probabilities.dtype
    assert a.violated.dtype == b.violated.dtype


class TestWindowResultRoundTrip:
    def test_every_window_bit_identical(self, attack_report):
        assert attack_report.windows  # non-trivial input
        for window in attack_report.windows:
            clone = WindowResult.from_dict(roundtrip(window.to_dict()))
            assert_window_identical(window, clone)
            assert clone.alarm == window.alarm

    def test_missing_field_rejected(self, attack_report):
        payload = attack_report.windows[0].to_dict()
        del payload["entropy"]
        with pytest.raises(DetectorError):
            WindowResult.from_dict(payload)


class TestAlertAndInferenceRoundTrip:
    def test_alert_identical(self, attack_report):
        assert attack_report.alerts
        for alert in attack_report.alerts:
            clone = Alert.from_dict(roundtrip(alert.to_dict()))
            assert clone == alert  # frozen dataclass of scalars/tuples

    def test_inference_identical(self, attack_report):
        inference = attack_report.inference
        assert inference is not None
        clone = InferenceResult.from_dict(roundtrip(inference.to_dict()))
        assert clone.candidates == inference.candidates
        # JSON stringifies int keys; they must come back as ints.
        assert clone.constraints == inference.constraints
        assert all(isinstance(k, int) for k in clone.constraints)
        assert clone.injected_fraction == inference.injected_fraction
        assert np.array_equal(clone.composition, inference.composition)
        assert clone.best_set == inference.best_set
        assert clone.member_shares == inference.member_shares


class TestDetectionReportRoundTrip:
    def test_report_bit_identical(self, attack_report):
        clone = DetectionReport.from_dict(roundtrip(attack_report.to_dict()))
        for a, b in zip(attack_report.windows, clone.windows):
            assert_window_identical(a, b)
        assert clone.alerts == attack_report.alerts
        # Every derived metric must therefore agree exactly.
        assert clone.detection_rate == attack_report.detection_rate
        assert clone.false_positive_rate == attack_report.false_positive_rate
        assert clone.detection_latency_us == attack_report.detection_latency_us
        assert clone.summary() == attack_report.summary()
        # And the dicts themselves are a fixed point.
        assert clone.to_dict() == attack_report.to_dict()

    def test_none_inference_survives(self, golden_template, ids_config, catalog):
        from repro.vehicle.traffic import simulate_drive

        trace = simulate_drive(5.0, seed=9, catalog=catalog)
        report = IDSPipeline(golden_template, ids_config).analyze(
            trace.to_columns()
        )
        assert report.inference is None
        clone = DetectionReport.from_dict(roundtrip(report.to_dict()))
        assert clone.inference is None
        assert clone.to_dict() == report.to_dict()


class TestArchiveReportRoundTrip:
    def test_paths_and_reports_survive(self, attack_report, tmp_path):
        original = ArchiveReport(
            captures=[
                (tmp_path / "a.log", attack_report),
                (tmp_path / "b.log", attack_report),
            ]
        )
        clone = ArchiveReport.from_dict(roundtrip(original.to_dict()))
        assert [p for p, _ in clone.captures] == [p for p, _ in original.captures]
        assert clone.detection_rate == original.detection_rate
        assert clone.to_dict() == original.to_dict()

"""Analysis utilities: online stats and bootstrap intervals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bootstrap import bootstrap_ci, bootstrap_rate_ci
from repro.analysis.rolling import OnlineStats, RollingWindowStats

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestOnlineStats:
    def test_empty(self):
        stats = OnlineStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.min is None
        assert stats.range == 0.0

    def test_known_values(self):
        stats = OnlineStats()
        for value in (2.0, 4.0, 6.0):
            stats.push(value)
        assert stats.mean == pytest.approx(4.0)
        assert stats.variance == pytest.approx(4.0)
        assert (stats.min, stats.max) == (2.0, 6.0)
        assert stats.range == 4.0

    @given(st.lists(floats, min_size=2, max_size=100))
    @settings(max_examples=100)
    def test_matches_numpy(self, values):
        stats = OnlineStats()
        for value in values:
            stats.push(value)
        arr = np.asarray(values)
        assert stats.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-6)
        assert stats.variance == pytest.approx(arr.var(ddof=1), rel=1e-6, abs=1e-4)

    @given(
        st.lists(floats, min_size=1, max_size=50),
        st.lists(floats, min_size=1, max_size=50),
    )
    @settings(max_examples=60)
    def test_merge_equals_concatenation(self, a_values, b_values):
        a = OnlineStats()
        for value in a_values:
            a.push(value)
        b = OnlineStats()
        for value in b_values:
            b.push(value)
        a.merge(b)
        combined = OnlineStats()
        for value in a_values + b_values:
            combined.push(value)
        assert a.count == combined.count
        assert a.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)
        assert a.variance == pytest.approx(combined.variance, rel=1e-6, abs=1e-4)

    def test_merge_with_empty(self):
        a = OnlineStats()
        a.push(1.0)
        a.merge(OnlineStats())
        assert a.count == 1
        empty = OnlineStats()
        empty.merge(a)
        assert empty.count == 1


class TestRollingWindow:
    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            RollingWindowStats(0)

    def test_expires_oldest(self):
        rolling = RollingWindowStats(3)
        for value in (1.0, 2.0, 3.0, 4.0):
            rolling.push(value)
        assert len(rolling) == 3
        assert rolling.mean == pytest.approx(3.0)
        assert rolling.min == 2.0

    def test_full_flag(self):
        rolling = RollingWindowStats(2)
        rolling.push(1.0)
        assert not rolling.full
        rolling.push(2.0)
        assert rolling.full

    @given(st.lists(floats, min_size=5, max_size=80), st.integers(3, 10))
    @settings(max_examples=60)
    def test_matches_trailing_slice(self, values, size):
        rolling = RollingWindowStats(size)
        for value in values:
            rolling.push(value)
        tail = np.asarray(values[-size:])
        assert rolling.mean == pytest.approx(tail.mean(), rel=1e-9, abs=1e-6)
        assert rolling.std == pytest.approx(tail.std(), rel=1e-5, abs=1e-3)


class TestBootstrap:
    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_rate_ci([2], [1])

    def test_single_sample_degenerate(self):
        point, low, high = bootstrap_ci([0.9])
        assert point == low == high == 0.9

    def test_interval_contains_point(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(0.9, 0.05, size=30)
        point, low, high = bootstrap_ci(samples, seed=2)
        assert low <= point <= high
        assert high - low < 0.1

    def test_deterministic_in_seed(self):
        samples = [0.8, 0.85, 0.95, 0.9]
        assert bootstrap_ci(samples, seed=3) == bootstrap_ci(samples, seed=3)

    def test_rate_ci_pools_counts(self):
        detected = [90, 50, 10]
        totals = [100, 50, 100]
        point, low, high = bootstrap_rate_ci(detected, totals, seed=4)
        assert point == pytest.approx(150 / 250)
        assert low <= point <= high

    def test_tighter_with_more_data(self):
        rng = np.random.default_rng(5)
        small = rng.normal(0.5, 0.1, size=5)
        large = rng.normal(0.5, 0.1, size=200)
        _p1, low1, high1 = bootstrap_ci(small, seed=6)
        _p2, low2, high2 = bootstrap_ci(large, seed=6)
        assert (high2 - low2) < (high1 - low1)

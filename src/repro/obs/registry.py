"""Metric registry: counters, gauges, log-bucket histograms, spans.

Everything here is stdlib-only and self-contained so the hot path
(`repro.core.engine`, `repro.io`) can import it without dragging in
numpy or any other layer.  The design constraints, in order:

* **Near-zero overhead when off.**  Instrumented call sites hold a
  single ``reg = obs.active()`` / ``if reg is None`` branch; no metric
  objects, kwargs dicts, or context managers are constructed on the
  disabled path.
* **Exact merges.**  Histograms use *fixed* log-scale bucket bounds
  (powers of two from ~1 µs to ~68 min) shared by every instance, so
  merging histograms from different workers/processes is exact bucket
  addition — no re-binning error, ever.
* **Versioned events.**  Every emitted event carries ``v`` =
  :data:`OBS_VERSION` and a wall-clock ``ts`` so logs from different
  builds can be distinguished, mirroring the wire-protocol version
  gate in ``repro.runtime.protocol``.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "OBS_VERSION",
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
]

#: Event / snapshot schema version (bump on incompatible change).
OBS_VERSION = 1

#: Shared histogram bucket upper bounds, in seconds: 2**-20 (~1 µs)
#: through 2**12 (~68 min).  Values above the last bound land in a
#: final overflow bucket.  Fixed bounds are what make cross-process
#: merges exact.
BUCKET_BOUNDS: Tuple[float, ...] = tuple(2.0 ** e for e in range(-20, 13))


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> int:
        return self.value


class Gauge:
    """A last-write-wins float."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> float:
        return self.value


class Histogram:
    """Log-scale histogram over the shared :data:`BUCKET_BOUNDS`.

    Buckets are stored sparsely (index -> count); bucket ``i`` counts
    observations ``<= BUCKET_BOUNDS[i]``, with ``len(BUCKET_BOUNDS)``
    as the overflow bucket.  Because every histogram shares the same
    bounds, :meth:`merge` is plain addition and therefore exact.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        i = bisect_left(BUCKET_BOUNDS, value)
        self.buckets[i] = self.buckets.get(i, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (exact: shared bounds)."""
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for i, n in other.buckets.items():
            self.buckets[i] = self.buckets.get(i, 0) + n

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "min_s": self.min,
            "max_s": self.max,
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "Histogram":
        hist = cls(name)
        hist.count = int(payload["count"])
        hist.total = float(payload["total_s"])
        hist.min = None if payload["min_s"] is None else float(payload["min_s"])
        hist.max = None if payload["max_s"] is None else float(payload["max_s"])
        hist.buckets = {int(i): int(n) for i, n in payload["buckets"].items()}
        return hist


class Registry:
    """Thread-safe home for metrics, spans, and event sinks.

    A registry owns named counters/gauges/histograms (get-or-create)
    and a list of sinks; :meth:`emit` stamps each event with the schema
    version and wall-clock time and fans it out to every sink.
    :meth:`span` times a stage with ``perf_counter``, records the
    duration into the histogram of the same name, and emits a ``span``
    event carrying the enclosing span's name so traces nest.
    """

    def __init__(self, sinks: Sequence = ()) -> None:
        self._lock = threading.Lock()
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.sinks: List = list(sinks)
        self._stack = threading.local()

    # -- metric accessors (get-or-create) ---------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self.counters.get(name)
            if metric is None:
                metric = self.counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self.gauges.get(name)
            if metric is None:
                metric = self.gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self.histograms.get(name)
            if metric is None:
                metric = self.histograms[name] = Histogram(name)
            return metric

    # -- events -----------------------------------------------------------
    def emit(self, kind: str, **fields) -> dict:
        """Stamp and fan an event out to every sink; returns the event."""
        event = {"v": OBS_VERSION, "ts": time.time(), "kind": kind}
        event.update(fields)
        for sink in self.sinks:
            sink.write(event)
        return event

    # -- spans ------------------------------------------------------------
    def _span_stack(self) -> List[str]:
        stack = getattr(self._stack, "names", None)
        if stack is None:
            stack = self._stack.names = []
        return stack

    @contextmanager
    def span(self, name: str, **fields) -> Iterator[None]:
        """Time a stage; record the duration; emit a ``span`` event."""
        stack = self._span_stack()
        parent = stack[-1] if stack else None
        stack.append(name)
        started = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - started
            stack.pop()
            with self._lock:
                hist = self.histograms.get(name)
                if hist is None:
                    hist = self.histograms[name] = Histogram(name)
            hist.observe(duration)
            self.emit("span", name=name, dur_s=duration, parent=parent, **fields)

    # -- aggregation ------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-safe dump of every metric (versioned like events)."""
        with self._lock:
            return {
                "v": OBS_VERSION,
                "counters": {k: c.value for k, c in sorted(self.counters.items())},
                "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
                "histograms": {
                    k: h.to_dict() for k, h in sorted(self.histograms.items())
                },
            }

    def merge_snapshot(self, payload: dict) -> None:
        """Fold a :meth:`snapshot` dict from another process into this
        registry — exact for histograms thanks to the shared bounds."""
        if payload.get("v") != OBS_VERSION:
            raise ValueError(
                f"snapshot version {payload.get('v')!r} != {OBS_VERSION}"
            )
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, hist_payload in payload.get("histograms", {}).items():
            self.histogram(name).merge(Histogram.from_dict(name, hist_payload))

    def bench_records(self, section: str) -> List[dict]:
        """Render every metric as PR 7 ``bench`` records for
        ``results/BENCH_*.json`` section-replace merges."""
        from repro.experiments.bench import bench_record

        records = []
        with self._lock:
            counters = sorted(self.counters.items())
            gauges = sorted(self.gauges.items())
            hists = sorted(self.histograms.items())
        for name, counter in counters:
            records.append(bench_record(section, name, counter.value, "count"))
        for name, gauge in gauges:
            records.append(bench_record(section, name, gauge.value, "value"))
        for name, hist in hists:
            records.append(
                bench_record(
                    section,
                    f"{name}.total",
                    hist.total,
                    "s",
                    params={"count": hist.count},
                )
            )
            records.append(bench_record(section, f"{name}.mean", hist.mean, "s"))
        return records

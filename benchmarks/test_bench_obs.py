"""Telemetry-overhead benchmark: the repro.obs layer, off and on.

The observability layer's contract is "one predictable branch when
disabled, useful spans when enabled, identical verdicts either way".
This benchmark holds it to that: the disabled path is measured against
the true pre-instrumentation loop (inlined in the experiment module),
the enabled path against the disabled one, and parity is asserted on
the full ``WindowResult.to_dict`` stream before any rate is trusted.
"""

import os

from conftest import append_artifact, append_bench
from repro.experiments import throughput

#: Capture size for the overhead measurement (env-overridable; larger
#: captures shrink the per-call noise floor around the tiny deltas
#: being measured).
OBS_FRAMES = int(os.environ.get("REPRO_BENCH_OBS_FRAMES", "300000"))


class TestTelemetryOverhead:
    def test_bench_obs_overhead(self, setup):
        """Off-path overhead vs the pre-instrumentation loop, on-path
        overhead vs off, per-stage span totals — one process, one
        capture, best-of-N."""
        result = throughput.run_obs(
            setup.template,
            setup.config,
            n_frames=OBS_FRAMES,
            catalog=setup.catalog,
        )
        append_artifact("obs", result.render())
        append_bench("obs", result.bench_records())
        # Instrumentation that changes the answer is worse than useless:
        # parity is unconditional, rates only gate with a core to spare.
        assert result.parity_ok, result.render()
        assert result.n_events > 0, result.render()
        assert result.stages, result.render()
        if (os.cpu_count() or 1) > 1:
            assert result.off_overhead_pct <= 2.0, result.render()

"""Bit-level encoding: ID bits, CRC-15, stuffing, frame lengths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.bits import (
    byte_bits,
    crc15,
    frame_bitstream,
    frame_wire_bits,
    id_bits,
    id_from_bits,
    stuff_bits,
    unstuff_bits,
)
from repro.can.constants import STUFF_RUN
from repro.exceptions import FrameError


class TestIdBits:
    def test_msb_first(self):
        assert id_bits(0b10000000000, 11) == (1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)

    def test_lsb(self):
        assert id_bits(1, 11)[-1] == 1

    def test_zero(self):
        assert id_bits(0, 11) == (0,) * 11

    def test_full(self):
        assert id_bits(0x7FF, 11) == (1,) * 11

    def test_rejects_overflow(self):
        with pytest.raises(FrameError):
            id_bits(0x800, 11)

    def test_rejects_negative(self):
        with pytest.raises(FrameError):
            id_bits(-1, 11)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            id_bits(0, 0)

    @given(st.integers(min_value=0, max_value=0x7FF))
    def test_roundtrip_11(self, value):
        assert id_from_bits(id_bits(value, 11)) == value

    @given(st.integers(min_value=0, max_value=(1 << 29) - 1))
    def test_roundtrip_29(self, value):
        assert id_from_bits(id_bits(value, 29)) == value

    def test_id_from_bits_rejects_non_bits(self):
        with pytest.raises(ValueError):
            id_from_bits((0, 2, 1))


class TestByteBits:
    def test_single_byte(self):
        assert byte_bits(b"\x80") == (1, 0, 0, 0, 0, 0, 0, 0)

    def test_empty(self):
        assert byte_bits(b"") == ()

    def test_length(self):
        assert len(byte_bits(b"\x01\x02\x03")) == 24


class TestCrc15:
    def test_empty_is_zero(self):
        assert crc15(()) == 0

    def test_single_one(self):
        # One 1-bit shifts in the polynomial once.
        assert crc15((1,)) == 0x4599

    def test_fits_in_15_bits(self):
        bits = tuple(int(b) for b in bin(0xDEADBEEF)[2:])
        assert 0 <= crc15(bits) < (1 << 15)

    def test_detects_single_bit_flip(self):
        bits = [0, 1, 1, 0, 1, 0, 1, 1, 0, 0, 1, 0, 1]
        original = crc15(tuple(bits))
        bits[4] ^= 1
        assert crc15(tuple(bits)) != original

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            crc15((0, 1, 2))

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=80))
    def test_deterministic(self, bits):
        assert crc15(bits) == crc15(bits)


class TestStuffing:
    def test_no_run_no_stuff(self):
        bits = (0, 1, 0, 1, 0, 1)
        assert stuff_bits(bits) == bits

    def test_run_of_five_zeros(self):
        assert stuff_bits((0,) * 5) == (0, 0, 0, 0, 0, 1)

    def test_run_of_five_ones(self):
        assert stuff_bits((1,) * 5) == (1, 1, 1, 1, 1, 0)

    def test_stuff_bit_starts_new_run(self):
        # 10 zeros: stuff after 5, the stuffed 1 resets the run, then the
        # remaining 5 zeros trigger another stuff bit.
        out = stuff_bits((0,) * 10)
        assert out == (0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1)

    def test_six_equal_without_stuffing_is_violation(self):
        with pytest.raises(FrameError):
            unstuff_bits((0,) * 6)

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            stuff_bits((0, 1, 3))

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    @settings(max_examples=200)
    def test_roundtrip(self, bits):
        assert list(unstuff_bits(stuff_bits(bits))) == bits

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    def test_no_six_bit_runs_after_stuffing(self, bits):
        stuffed = stuff_bits(bits)
        run = 0
        prev = None
        for bit in stuffed:
            run = run + 1 if bit == prev else 1
            prev = bit
            assert run <= STUFF_RUN

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    def test_stuffing_only_adds_bits(self, bits):
        stuffed = stuff_bits(bits)
        assert len(stuffed) >= len(bits)
        # At most one stuff bit per STUFF_RUN original bits.
        assert len(stuffed) <= len(bits) + len(bits) // STUFF_RUN + 1


class TestFrameBitstream:
    def test_base_frame_header_length(self):
        # SOF(1) + ID(11) + RTR(1) + IDE(1) + r0(1) + DLC(4) + CRC(15)
        # with no payload: 34 bits before stuffing.
        stream = frame_bitstream(0x2AA, b"")  # alternating ID avoids stuffing
        assert len(stream) >= 34

    def test_extended_frame_longer_than_base(self):
        base = frame_wire_bits(0x555, b"\xAA" * 4)
        ext = frame_wire_bits(0x555 << 18 | 0x2AAAA, b"\xAA" * 4, extended=True)
        assert ext > base + 15  # 18 extra ID bits + SRR, minus stuffing noise

    def test_payload_increases_length(self):
        short = frame_wire_bits(0x2AA, b"")
        long = frame_wire_bits(0x2AA, b"\x55" * 8)
        assert long - short >= 60  # 64 payload bits minus stuffing variance

    def test_dominant_id_stuffs_more(self):
        # Identifier 0 produces long dominant runs -> more stuff bits.
        assert frame_wire_bits(0x000, b"") > frame_wire_bits(0x2AA, b"")

    def test_rtr_frame_has_no_payload_bits(self):
        data = frame_wire_bits(0x2AA, b"")
        rtr = frame_wire_bits(0x2AA, b"", rtr=True)
        # RTR bit value may change stuffing slightly; length is comparable.
        assert abs(data - rtr) <= 3

    def test_rejects_oversized_dlc(self):
        with pytest.raises(FrameError):
            frame_bitstream(0x100, b"\x00" * 9)

    @given(
        st.integers(min_value=0, max_value=0x7FF),
        st.binary(max_size=8),
    )
    @settings(max_examples=100)
    def test_wire_bits_bounds(self, can_id, data):
        # Unstuffed base data frame: 34 + 8*dlc bits in the stuffed
        # region plus 10 fixed trailer bits; stuffing adds at most 20%.
        bits = frame_wire_bits(can_id, data)
        unstuffed = 34 + 8 * len(data)
        assert unstuffed + 10 <= bits <= unstuffed + unstuffed // STUFF_RUN + 11

"""Driving scenarios.

The paper's golden template averages entropy measurements over "diverse
driving behaviors, e.g. turning the audio on, turning the light on, and
driving with cruise control".  In the synthetic vehicle, a scenario is a
set of rate multipliers over the event-message tags: turning the audio on
raises the arrival rate of ``audio``-tagged messages, night driving
raises ``lights``, and so on.  Periodic traffic — the overwhelming bulk of
the bus — is unaffected, which is precisely why the paper finds the
per-bit entropy so stable across scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ScenarioError


@dataclass(frozen=True)
class DrivingScenario:
    """A named modulation of the event-driven traffic.

    ``rate_multipliers`` maps an event tag to a factor applied to the
    tag's base arrival rate; tags not listed keep factor 1.0.  A factor
    of 0 silences the tag entirely.
    """

    name: str
    rate_multipliers: Dict[str, float] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        for tag, factor in self.rate_multipliers.items():
            if factor < 0:
                raise ScenarioError(f"scenario {self.name}: negative rate for {tag!r}")

    def rate_for(self, tag: str, base_rate_hz: float) -> float:
        """Effective arrival rate of an event tag under this scenario."""
        return base_rate_hz * self.rate_multipliers.get(tag, 1.0)


# The paper's key empirical observation (Section IV.B) is that the per-bit
# entropy barely moves across driving behaviours — the dominant periodic
# traffic is identical and only a handful of low-rate event messages
# change.  The standard scenarios therefore modulate event rates gently
# (factors in [0.5, 2]); the golden-template stability experiment (E4)
# verifies the resulting ranges stay orders of magnitude below attack
# deviations.
STANDARD_SCENARIOS: List[DrivingScenario] = [
    DrivingScenario("idle", {"audio": 0.6, "lights": 0.6, "cruise": 0.5, "wipers": 0.5},
                    description="engine running, car parked"),
    DrivingScenario("city", {"lights": 1.1, "doors": 1.3, "cruise": 0.7},
                    description="stop-and-go city driving"),
    DrivingScenario("highway", {"cruise": 1.4, "doors": 0.6},
                    description="steady highway driving"),
    DrivingScenario("audio_on", {"audio": 1.8},
                    description="infotainment in active use"),
    DrivingScenario("lights_on", {"lights": 1.8},
                    description="night driving with exterior lights"),
    DrivingScenario("cruise_control", {"cruise": 1.8, "audio": 0.8},
                    description="adaptive cruise control engaged"),
    DrivingScenario("rain", {"wipers": 2.0, "lights": 1.5},
                    description="wipers and lights active"),
    DrivingScenario("parking", {"doors": 1.8, "audio": 0.7, "cruise": 0.5},
                    description="low-speed manoeuvring, doors cycling"),
]


def scenario_by_name(name: str) -> DrivingScenario:
    """Look up one of the standard scenarios."""
    for scenario in STANDARD_SCENARIOS:
        if scenario.name == name:
            return scenario
    raise ScenarioError(
        f"unknown scenario {name!r}; available: "
        + ", ".join(s.name for s in STANDARD_SCENARIOS)
    )


def random_scenario(rng: np.random.Generator, name: Optional[str] = None) -> DrivingScenario:
    """Draw a randomized scenario for template diversity.

    Every known event tag receives a log-uniform multiplier in
    [0.5, 2.0]; this is how the reproduction obtains the paper's "35
    measurements from diverse driving behaviors" without 35 scripted
    drives.  The modulation is deliberately gentle — matching the paper's
    observation that normal-driving entropy varies only minutely.
    """
    tags = ("audio", "lights", "cruise", "wipers", "doors", "hvac", "diag", "misc")
    multipliers = {
        tag: float(np.exp(rng.uniform(np.log(0.5), np.log(2.0)))) for tag in tags
    }
    return DrivingScenario(
        name or f"random_{rng.integers(1 << 30)}",
        multipliers,
        description="randomized event mix for template construction",
    )

"""Out-of-core scan under an enforced RSS ceiling.

The tentpole claim of the out-of-core path is *bounded memory*: a
capture far larger than the scanner's memory budget scans to a report
bit-identical to the in-RAM scan.  This experiment enforces the claim
with the kernel's own accounting rather than trusting ours:

* the **parent** synthesizes a multi-million-frame ``.npz`` capture
  (several times larger than the ceiling), scans it in RAM for the
  reference report, and spawns a **child** process;
* the child runs under ``RLIMIT_DATA`` — since Linux 4.7 that limit
  covers brk *and* private anonymous mappings, i.e. every numpy
  allocation, while leaving the read-only file-backed ``mmap`` of the
  capture uncounted.  Any attempt to materialise the capture in memory
  dies with ``MemoryError``; paging windows through the fused kernel
  does not;
* the ceiling is sized honestly: a probe child first measures the anon
  data baseline of a bare interpreter + numpy + detector import, and
  the ceiling is that baseline plus a fixed scan budget.  The capture
  is then sized to at least ``min_size_ratio`` (default 4x) the ceiling;
* the child also *attempts* an eager (non-mmap) load under the same
  ceiling and reports the expected ``MemoryError`` — demonstrating the
  ceiling is real, not generous;
* finally the parent diffs the child's JSON report against its in-RAM
  reference, field for field.

The **ingest** phase (:func:`run_ingest`) makes the same claim for the
path *into* the scanner: a multi-hundred-megabyte gzipped candump text
capture streams — under the same kind of ceiling — through the
block-vectorised reader into the block-compressed ``.npb`` container,
and the container then scans to the bit-identical report, while the
eager whole-file text load dies with ``MemoryError``.  It also checks
the container earns its keep on disk: smaller than the uncompressed
``.npz`` of the same columns.

Run standalone (the CI ``ooc-smoke`` job)::

    python -m repro.experiments.ooc_smoke

which runs both phases and exits non-zero unless both out-of-core
reports are bit-identical (and the eager paths really failed).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional

__all__ = [
    "IngestSmokeResult",
    "OocSmokeResult",
    "run",
    "run_ingest",
    "synthesize_capture",
]

#: Anonymous-memory budget granted to the child on top of its measured
#: import baseline.  Generous for the chunked scan (whose working set is
#: the kernel workspace plus one chunk of derived arrays) and far too
#: small to materialise the capture.
DEFAULT_BUDGET_BYTES = 64 * 1024 * 1024

#: The capture must be at least this many times the RSS ceiling.
DEFAULT_SIZE_RATIO = 4.0

#: Anonymous-memory budget for the *ingest* child.  Streaming ingest
#: works harder per byte than the window scan — vectorised block
#: parsing, chunk re-slicing and per-column compression all allocate
#: transients — so it gets more headroom; still a small fraction of
#: the capture it digests.
DEFAULT_INGEST_BUDGET_BYTES = 2 * DEFAULT_BUDGET_BYTES

#: The *uncompressed text* of the ingest capture must be at least this
#: many times the ceiling (the eager text load buffers the whole
#: decompressed file, so any multiple over ~1 forces ``MemoryError``).
DEFAULT_INGEST_SIZE_RATIO = 2.5

#: Mean synthetic inter-arrival (microseconds); ~4000 frames per 2s
#: detection window.
_MEAN_GAP_US = 500


def _vm_data_bytes() -> int:
    """Current anon data-segment size (what ``RLIMIT_DATA`` meters)."""
    with open("/proc/self/status", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmData:"):
                return int(line.split()[1]) * 1024
    return 0


def synthesize_capture(n_frames: int, seed: int = 7):
    """A deterministic attack-sprinkled capture with silent gaps.

    Built straight from numpy (no traffic model) so that a few hundred
    megabytes of capture synthesize in seconds: random identifiers over
    the full 11-bit space, ~0.1% frames flagged as attacks, two
    multi-window silent gaps (exercising the chunk iterator's gap jump)
    and a trailing partial window.
    """
    import numpy as np

    from repro.io.columnar import ColumnTrace

    rng = np.random.default_rng(seed)
    gaps = rng.integers(
        _MEAN_GAP_US // 2, _MEAN_GAP_US * 3 // 2, size=n_frames, dtype=np.int64
    )
    for fraction in (0.33, 0.71):  # silent gaps spanning many windows
        gaps[int(n_frames * fraction)] += 11 * 2_000_000
    timestamps = np.cumsum(gaps) + 1_000_000
    ids = rng.integers(0, 2048, size=n_frames, dtype=np.int64)
    attacks = rng.random(n_frames) < 0.001
    return ColumnTrace(timestamps, ids, is_attack=attacks, validate=False)


@dataclass(frozen=True)
class OocSmokeResult:
    """Outcome of one RSS-bounded out-of-core scan."""

    n_frames: int
    n_windows: int
    npz_bytes: int
    baseline_bytes: int
    rss_limit_bytes: int
    chunk_windows: int
    child_elapsed_s: float
    ooc_mps: float
    eager_failed: bool
    identical: bool

    @property
    def size_over_limit(self) -> float:
        """Capture bytes over the RSS ceiling."""
        return (
            self.npz_bytes / self.rss_limit_bytes
            if self.rss_limit_bytes
            else 0.0
        )

    @property
    def ok(self) -> bool:
        """The experiment's pass verdict."""
        return self.identical and self.eager_failed

    def render(self) -> str:
        """The experiment's artifact table."""
        mb = 1024 * 1024
        lines = [
            "Out-of-core scan under an RSS ceiling (RLIMIT_DATA)",
            f"capture: {self.n_frames:,} frames, "
            f"{self.npz_bytes / mb:,.0f} MB npz "
            f"({self.size_over_limit:.1f}x the ceiling)",
            f"ceiling: {self.rss_limit_bytes / mb:,.0f} MB "
            f"(import baseline {self.baseline_bytes / mb:,.0f} MB + scan "
            f"budget), chunk_windows={self.chunk_windows}",
            f"ooc scan: {self.n_windows} windows in "
            f"{self.child_elapsed_s:.2f}s ({self.ooc_mps:,.0f} msg/s)",
            "eager load under ceiling: "
            + ("MemoryError (as expected)" if self.eager_failed
               else "SUCCEEDED (ceiling not binding!)"),
            "report parity vs in-RAM scan: "
            + ("bit-identical" if self.identical else "MISMATCH"),
        ]
        return "\n".join(lines)

    def bench_records(self) -> List[dict]:
        """Machine-readable twin of :meth:`render`."""
        from repro.experiments.bench import bench_record

        params = {
            "n_frames": self.n_frames,
            "n_windows": self.n_windows,
            "chunk_windows": self.chunk_windows,
        }
        section = "ooc"
        return [
            bench_record(section, "npz_bytes", self.npz_bytes, "bytes", params),
            bench_record(
                section, "rss_limit_bytes", self.rss_limit_bytes,
                "bytes", params,
            ),
            bench_record(
                section, "size_over_limit", self.size_over_limit, "x", params
            ),
            bench_record(section, "ooc_mps", self.ooc_mps, "msg/s", params),
            bench_record(
                section, "eager_failed", 1.0 if self.eager_failed else 0.0,
                "bool", params,
            ),
            bench_record(
                section, "identical", 1.0 if self.identical else 0.0,
                "bool", params,
            ),
        ]


@dataclass(frozen=True)
class IngestSmokeResult:
    """Outcome of one RSS-bounded streaming ingest + container scan."""

    n_frames: int
    n_windows: int
    gz_bytes: int
    npz_bytes: int
    npb_bytes: int
    #: Size of the same capture re-written as a v1 (raw-zlib) container.
    npb_v1_bytes: int
    baseline_bytes: int
    rss_limit_bytes: int
    chunk_windows: int
    ingest_elapsed_s: float
    scan_elapsed_s: float
    ingest_mps: float
    eager_failed: bool
    identical: bool

    @property
    def ok(self) -> bool:
        """The experiment's pass verdict."""
        return (
            self.identical
            and self.eager_failed
            and self.npb_bytes < self.npz_bytes
            and self.npb_bytes <= self.npb_v1_bytes
        )

    def render(self) -> str:
        """The experiment's artifact table."""
        mb = 1024 * 1024
        lines = [
            "Out-of-core ingest under an RSS ceiling (RLIMIT_DATA)",
            f"capture: {self.n_frames:,} frames, "
            f"{self.gz_bytes / mb:,.0f} MB gzipped candump",
            f"ceiling: {self.rss_limit_bytes / mb:,.0f} MB "
            f"(import baseline {self.baseline_bytes / mb:,.0f} MB + "
            f"budget), chunk_windows={self.chunk_windows}",
            f"ingest -> .npb: {self.ingest_elapsed_s:.2f}s "
            f"({self.ingest_mps:,.0f} msg/s), container scan: "
            f"{self.n_windows} windows in {self.scan_elapsed_s:.2f}s",
            f"container size: {self.npb_bytes / mb:,.1f} MB npb vs "
            f"{self.npz_bytes / mb:,.1f} MB uncompressed npz "
            + ("(smaller)" if self.npb_bytes < self.npz_bytes
               else "(NOT smaller!)"),
            f"codec pipeline: v2 {self.npb_bytes / mb:,.1f} MB vs v1 "
            f"{self.npb_v1_bytes / mb:,.1f} MB "
            + ("(v2 ≤ v1)" if self.npb_bytes <= self.npb_v1_bytes
               else "(v2 LARGER than v1!)"),
            "eager text load under ceiling: "
            + ("MemoryError (as expected)" if self.eager_failed
               else "SUCCEEDED (ceiling not binding!)"),
            "report parity vs in-RAM scan: "
            + ("bit-identical" if self.identical else "MISMATCH"),
        ]
        return "\n".join(lines)

    def bench_records(self) -> List[dict]:
        """Machine-readable twin of :meth:`render`."""
        from repro.experiments.bench import bench_record

        params = {
            "n_frames": self.n_frames,
            "n_windows": self.n_windows,
            "chunk_windows": self.chunk_windows,
        }
        section = "ooc_ingest"
        return [
            bench_record(section, "gz_bytes", self.gz_bytes, "bytes", params),
            bench_record(section, "npz_bytes", self.npz_bytes, "bytes", params),
            bench_record(section, "npb_bytes", self.npb_bytes, "bytes", params),
            bench_record(
                section, "npb_v1_bytes", self.npb_v1_bytes, "bytes", params
            ),
            bench_record(
                section, "rss_limit_bytes", self.rss_limit_bytes,
                "bytes", params,
            ),
            bench_record(
                section, "ingest_mps", self.ingest_mps, "msg/s", params
            ),
            bench_record(
                section, "eager_failed", 1.0 if self.eager_failed else 0.0,
                "bool", params,
            ),
            bench_record(
                section, "identical", 1.0 if self.identical else 0.0,
                "bool", params,
            ),
        ]


# ----------------------------------------------------------------------
# Child process: scan one capture, optionally under RLIMIT_DATA
# ----------------------------------------------------------------------

def _child_main(argv: List[str]) -> int:
    """``--scan`` entry: runs before any heavy import so the rlimit is
    in place for everything numpy allocates."""
    import argparse

    parser = argparse.ArgumentParser(prog="ooc_smoke --scan")
    parser.add_argument("capture")
    parser.add_argument("--setup", required=True)
    parser.add_argument("--out", required=True)
    parser.add_argument("--limit-bytes", type=int, default=None)
    parser.add_argument("--chunk-windows", type=int, default=None)
    parser.add_argument("--try-eager", action="store_true")
    parser.add_argument("--ingest", metavar="NPB", default=None)
    parser.add_argument("--block-bytes", type=int, default=None)
    args = parser.parse_args(argv)

    if args.limit_bytes is not None:
        import resource

        resource.setrlimit(
            resource.RLIMIT_DATA, (args.limit_bytes, args.limit_bytes)
        )

    from repro.core import BatchEntropyEngine, IDSConfig
    from repro.core.engine import DEFAULT_CHUNK_WINDOWS
    from repro.core.template import GoldenTemplate
    from repro.io.columnar import ColumnTrace

    with open(args.setup, encoding="utf-8") as handle:
        setup = json.load(handle)
    template = GoldenTemplate.from_dict(setup["template"])
    config = IDSConfig(**setup["config"])
    chunk_windows = (
        args.chunk_windows if args.chunk_windows else DEFAULT_CHUNK_WINDOWS
    )
    engine = BatchEntropyEngine(template, config)

    if args.ingest is not None:
        # Streaming ingest: gzipped candump text -> block-compressed
        # container -> container scan, all under the rlimit.
        from repro.io.blocks import DEFAULT_BLOCK_FRAMES, BlockReader, BlockWriter
        from repro.io.log import iter_candump_columns
        from repro.io._gz import DEFAULT_BLOCK_BYTES

        block_bytes = args.block_bytes or DEFAULT_BLOCK_BYTES
        start = time.perf_counter()
        with BlockWriter(args.ingest) as writer:
            for chunk in iter_candump_columns(
                args.capture, DEFAULT_BLOCK_FRAMES, block_bytes=block_bytes
            ):
                writer.append(chunk)
        ingest_elapsed = time.perf_counter() - start
        # Legacy-format twin for the size claim: stream the fresh v2
        # container back out as v1, still under the rlimit (O(block)
        # both directions).  The decoded-block cache is disabled in
        # this child so the ceiling meters the streaming path itself,
        # not the cache's (budgeted, evictable) retention.
        v1_twin = args.ingest + ".v1"
        with BlockReader(args.ingest, cache=False) as reader, BlockWriter(
            v1_twin, version=1
        ) as legacy:
            for block in reader.iter_blocks():
                legacy.append(block)
        npb_v1_bytes = os.path.getsize(v1_twin)
        with BlockReader(args.ingest, cache=False) as reader:
            n_frames = len(reader)
            start = time.perf_counter()
            windows = engine.scan_stream(reader, chunk_windows=chunk_windows)
        elapsed = time.perf_counter() - start

        eager_failed = None
        if args.try_eager:
            from repro.io.log import read_candump_columns

            try:
                read_candump_columns(args.capture)
                eager_failed = False
            except MemoryError:
                eager_failed = True
    else:
        ingest_elapsed = None
        npb_v1_bytes = None
        trace = ColumnTrace.load_npz(args.capture, mmap=True)
        n_frames = len(trace)
        start = time.perf_counter()
        windows = engine.scan_stream(trace, chunk_windows=chunk_windows)
        elapsed = time.perf_counter() - start

        eager_failed = None
        if args.try_eager:
            try:
                ColumnTrace.load_npz(args.capture)
                eager_failed = False
            except MemoryError:
                eager_failed = True

    report = {
        "n_frames": n_frames,
        "elapsed_s": elapsed,
        "ingest_elapsed_s": ingest_elapsed,
        "npb_v1_bytes": npb_v1_bytes,
        "vm_data_bytes": _vm_data_bytes(),
        "eager_failed": eager_failed,
        "windows": [w.to_dict() for w in windows],
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle)
    return 0


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def _spawn_child(capture, setup_path, out_path, **options) -> dict:
    """Run the ``--scan`` child and return its JSON report."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else os.pathsep.join([src_root, existing])
    )
    command = [
        sys.executable, "-m", "repro.experiments.ooc_smoke", "--scan",
        str(capture), "--setup", str(setup_path), "--out", str(out_path),
    ]
    if options.get("limit_bytes"):
        command += ["--limit-bytes", str(int(options["limit_bytes"]))]
    if options.get("chunk_windows"):
        command += ["--chunk-windows", str(int(options["chunk_windows"]))]
    if options.get("try_eager"):
        command += ["--try-eager"]
    if options.get("ingest"):
        command += ["--ingest", str(options["ingest"])]
    if options.get("block_bytes"):
        command += ["--block-bytes", str(int(options["block_bytes"]))]
    completed = subprocess.run(
        command, env=env, capture_output=True, text=True
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"ooc child failed ({completed.returncode}):\n"
            f"{completed.stdout}\n{completed.stderr}"
        )
    with open(out_path, encoding="utf-8") as handle:
        return json.load(handle)


def run(
    template=None,
    config=None,
    n_frames: Optional[int] = None,
    budget_bytes: int = DEFAULT_BUDGET_BYTES,
    min_size_ratio: float = DEFAULT_SIZE_RATIO,
    chunk_windows: Optional[int] = None,
    seed: int = 7,
    workdir: Optional[str] = None,
) -> OocSmokeResult:
    """Scan a larger-than-ceiling capture out-of-core and diff reports.

    ``n_frames`` defaults to whatever makes the capture at least
    ``min_size_ratio`` times the ceiling (probe baseline +
    ``budget_bytes``); pass it explicitly to size the run by hand.
    ``template`` defaults to a quick golden template trained on the
    synthetic capture's own clean prefix.
    """
    from repro.core import BatchEntropyEngine, IDSConfig, TemplateBuilder
    from repro.core.engine import DEFAULT_CHUNK_WINDOWS

    config = config or IDSConfig()
    chunk_windows = (
        int(chunk_windows) if chunk_windows else DEFAULT_CHUNK_WINDOWS
    )
    cleanup = workdir is None
    tmp = Path(
        tempfile.mkdtemp(prefix="repro-ooc-") if cleanup else workdir
    )
    try:
        # --- probe: baseline anon usage + on-disk bytes per frame ----
        probe_frames = 50_000
        probe_capture = synthesize_capture(probe_frames, seed=seed)
        if template is None:
            builder = TemplateBuilder(config)
            builder.add_trace_windows(probe_capture)
            template = builder.build()
        probe_npz = tmp / "probe.npz"
        probe_capture.save_npz(probe_npz)
        setup_path = tmp / "setup.json"
        setup_path.write_text(
            json.dumps(
                {"template": template.to_dict(), "config": asdict(config)}
            ),
            encoding="utf-8",
        )
        probe_report = _spawn_child(
            probe_npz, setup_path, tmp / "probe_report.json",
            chunk_windows=chunk_windows,
        )
        baseline = int(probe_report["vm_data_bytes"])
        limit = baseline + int(budget_bytes)

        # --- the capture: >= min_size_ratio x the ceiling -------------
        bytes_per_frame = probe_npz.stat().st_size / probe_frames
        if n_frames is None:
            n_frames = int(min_size_ratio * 1.05 * limit / bytes_per_frame)
        capture = synthesize_capture(int(n_frames), seed=seed)
        npz_path = tmp / "capture.npz"
        capture.save_npz(npz_path)
        npz_bytes = npz_path.stat().st_size

        # --- in-RAM reference (parent, no limit) ----------------------
        reference = [
            w.to_dict()
            for w in BatchEntropyEngine(template, config).scan(capture)
        ]
        reference = json.loads(json.dumps(reference))
        del capture

        # --- the RSS-bounded child ------------------------------------
        child = _spawn_child(
            npz_path, setup_path, tmp / "report.json",
            limit_bytes=limit, chunk_windows=chunk_windows, try_eager=True,
        )
        elapsed = float(child["elapsed_s"])
        return OocSmokeResult(
            n_frames=int(n_frames),
            n_windows=len(reference),
            npz_bytes=int(npz_bytes),
            baseline_bytes=baseline,
            rss_limit_bytes=int(limit),
            chunk_windows=chunk_windows,
            child_elapsed_s=elapsed,
            ooc_mps=int(n_frames) / elapsed if elapsed else 0.0,
            eager_failed=bool(child["eager_failed"]),
            identical=child["windows"] == reference,
        )
    finally:
        if cleanup:
            import shutil

            shutil.rmtree(tmp, ignore_errors=True)


def run_ingest(
    template=None,
    config=None,
    n_frames: Optional[int] = None,
    budget_bytes: int = DEFAULT_INGEST_BUDGET_BYTES,
    min_size_ratio: float = DEFAULT_INGEST_SIZE_RATIO,
    chunk_windows: Optional[int] = None,
    seed: int = 7,
    workdir: Optional[str] = None,
) -> IngestSmokeResult:
    """Stream a larger-than-ceiling gzipped candump into the container.

    The child — under ``RLIMIT_DATA`` — block-parses the text capture
    into a ``.npb`` container, then scans the container out-of-core;
    the parent diffs the report against an in-RAM reference scan.
    ``n_frames`` defaults to whatever makes the *uncompressed* text at
    least ``min_size_ratio`` times the ceiling, so the eager whole-file
    text load cannot fit.
    """
    from repro.core import BatchEntropyEngine, IDSConfig, TemplateBuilder
    from repro.core.engine import DEFAULT_CHUNK_WINDOWS
    from repro.io.log import write_candump_columns

    config = config or IDSConfig()
    chunk_windows = (
        int(chunk_windows) if chunk_windows else DEFAULT_CHUNK_WINDOWS
    )
    cleanup = workdir is None
    tmp = Path(
        tempfile.mkdtemp(prefix="repro-ooc-ingest-") if cleanup else workdir
    )
    try:
        # --- probe: baseline anon usage + text bytes per frame --------
        probe_frames = 50_000
        probe_capture = synthesize_capture(probe_frames, seed=seed)
        if template is None:
            builder = TemplateBuilder(config)
            builder.add_trace_windows(probe_capture)
            template = builder.build()
        probe_log = tmp / "probe.log"
        write_candump_columns(probe_capture, probe_log)
        text_bytes_per_frame = probe_log.stat().st_size / probe_frames
        probe_gz = tmp / "probe.log.gz"
        write_candump_columns(probe_capture, probe_gz)
        setup_path = tmp / "setup.json"
        setup_path.write_text(
            json.dumps(
                {"template": template.to_dict(), "config": asdict(config)}
            ),
            encoding="utf-8",
        )
        probe_report = _spawn_child(
            probe_gz, setup_path, tmp / "probe_report.json",
            chunk_windows=chunk_windows, ingest=tmp / "probe.npb",
        )
        baseline = int(probe_report["vm_data_bytes"])
        limit = baseline + int(budget_bytes)

        # --- the capture: uncompressed text >= ratio x the ceiling ----
        if n_frames is None:
            n_frames = int(
                min_size_ratio * 1.05 * limit / text_bytes_per_frame
            )
        capture = synthesize_capture(int(n_frames), seed=seed)
        gz_path = tmp / "capture.log.gz"
        write_candump_columns(capture, gz_path)
        gz_bytes = gz_path.stat().st_size
        npz_path = tmp / "capture.npz"
        capture.save_npz(npz_path)
        npz_bytes = npz_path.stat().st_size

        # --- in-RAM reference (parent, no limit) ----------------------
        reference = [
            w.to_dict()
            for w in BatchEntropyEngine(template, config).scan(capture)
        ]
        reference = json.loads(json.dumps(reference))
        del capture

        # --- the RSS-bounded ingest + container scan ------------------
        npb_path = tmp / "capture.npb"
        child = _spawn_child(
            gz_path, setup_path, tmp / "report.json",
            limit_bytes=limit, chunk_windows=chunk_windows, try_eager=True,
            ingest=npb_path, block_bytes=4 * 1024 * 1024,
        )
        ingest_elapsed = float(child["ingest_elapsed_s"])
        return IngestSmokeResult(
            n_frames=int(n_frames),
            n_windows=len(reference),
            gz_bytes=int(gz_bytes),
            npz_bytes=int(npz_bytes),
            npb_bytes=int(npb_path.stat().st_size),
            npb_v1_bytes=int(child["npb_v1_bytes"]),
            baseline_bytes=baseline,
            rss_limit_bytes=int(limit),
            chunk_windows=chunk_windows,
            ingest_elapsed_s=ingest_elapsed,
            scan_elapsed_s=float(child["elapsed_s"]),
            ingest_mps=(
                int(n_frames) / ingest_elapsed if ingest_elapsed else 0.0
            ),
            eager_failed=bool(child["eager_failed"]),
            identical=child["windows"] == reference,
        )
    finally:
        if cleanup:
            import shutil

            shutil.rmtree(tmp, ignore_errors=True)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry: child mode with ``--scan``, driver mode otherwise."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "--scan":
        return _child_main(argv[1:])
    result = run()
    print(result.render())
    ingest = run_ingest()
    print()
    print(ingest.render())
    return 0 if result.ok and ingest.ok else 1


if __name__ == "__main__":
    sys.exit(main())

"""Thin shim for legacy editable installs (environments without `wheel`).

All real metadata lives in pyproject.toml; this file only lets
``pip install -e . --no-use-pep517`` work where PEP 660 builds cannot.
"""

from setuptools import setup

setup()

"""Per-column filter codecs for the ``.npb`` container (format v2).

zlib is a generic byte compressor: it finds repeated *strings*, not
numeric structure.  CAN captures are pathologically structured —
monotone timestamps, a few dozen distinct IDs, near-constant DLCs and
payload bytes — so each codec here rearranges one column into a form
where that structure becomes byte-level repetition *before* deflate
sees it:

``raw``
    Identity.  Always applicable; the escape hatch that guarantees a
    v2 file never compresses worse than v1 (the writer keeps ``raw``
    whenever a filter does not pay for itself).
``delta``
    First value in the metadata, then zigzag-encoded successive
    deltas downcast to the narrowest unsigned dtype that holds them.
    Monotone microsecond timestamps become tiny near-constant deltas;
    payload offsets become the DLC sequence (almost always the byte
    ``8``).  Zigzag is computed modulo 2**64, which keeps it a
    bijection for any int64 delta — no overflow case exists.
``dict``
    Per-block dictionary: the sorted unique values followed by
    narrow-int codes (``np.unique`` + ``take``).  A 29-bit ID column
    with 40 distinct IDs becomes 40 values + one byte per frame.
``shuffle``
    Byte transpose.  For fixed-width integer columns the width is the
    itemsize (classic byte shuffle: all high-order zero bytes end up
    adjacent); for the flat payload column the width is the block's
    uniform DLC, grouping byte *position k of every frame* together —
    counters stay next to counters, constants next to constants.

Encoders raise :class:`CodecUnsuitable` when a filter cannot apply
(ragged payloads for ``shuffle``, oversized dictionaries, empty input
for ``delta``); the writer falls back to ``raw`` for that block.
Decoders raise :class:`ValueError` on malformed input — the reader
wraps that into ``TraceFormatError`` so corruption is always
diagnosed, never silently decoded into garbage.

Everything is vectorised numpy; there are no per-frame loops on
either side.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = [
    "CODEC_NAMES",
    "CodecUnsuitable",
    "encode",
    "decode",
]

#: Every codec tag the v2 format may carry.
CODEC_NAMES = ("raw", "delta", "dict", "shuffle")

#: Narrowest-first unsigned dtypes used for downcasting.
_NARROW = (np.dtype("<u1"), np.dtype("<u2"), np.dtype("<u4"), np.dtype("<u8"))

#: Dictionary codes wider than this never pay off on CAN columns.
_DICT_MAX_VALUES = 65_536


class CodecUnsuitable(Exception):
    """Raised by an encoder when the filter cannot apply to this block."""


def _narrowest(max_value: int) -> np.dtype:
    for dt in _NARROW:
        if max_value <= np.iinfo(dt).max:
            return dt
    raise CodecUnsuitable(f"value {max_value} exceeds uint64")  # pragma: no cover


def _require_int(arr: np.ndarray, codec: str) -> None:
    if arr.dtype.kind not in "iu" or arr.dtype.itemsize > 8:
        raise CodecUnsuitable(f"{codec} requires an integer column, got {arr.dtype}")


# ----------------------------------------------------------------------
# encode

def _encode_raw(arr: np.ndarray, width=None) -> Tuple[bytes, dict]:
    return np.ascontiguousarray(arr).tobytes(), {}


def _encode_delta(arr: np.ndarray, width=None) -> Tuple[bytes, dict]:
    _require_int(arr, "delta")
    if arr.size == 0:
        raise CodecUnsuitable("delta requires at least one value")
    a = arr.astype(np.int64, copy=False)
    d = np.diff(a)
    if d.size == 0 or int(d.min()) >= 0:
        # Monotone (the expected case for timestamps/offsets): store
        # plain deltas — zigzag would double every code for nothing
        # and cost an extra un-filter pass on decode.
        sdtype = _narrowest(int(d.max()) if d.size else 0)
        return d.astype(sdtype).tobytes(), {
            "first": int(a[0]),
            "sdtype": sdtype.str,
            "zz": 0,
        }
    # Zigzag modulo 2**64: small |delta| -> small code, bijective for
    # every int64 delta, so downcasting is purely a size decision.
    z = (d.astype(np.uint64) << np.uint64(1)) ^ (d >> np.int64(63)).astype(np.uint64)
    sdtype = _narrowest(int(z.max()) if z.size else 0)
    return z.astype(sdtype).tobytes(), {
        "first": int(a[0]),
        "sdtype": sdtype.str,
        "zz": 1,
    }


def _encode_dict(arr: np.ndarray, width=None) -> Tuple[bytes, dict]:
    _require_int(arr, "dict")
    values, codes = np.unique(arr, return_inverse=True)
    if values.size > _DICT_MAX_VALUES:
        raise CodecUnsuitable(
            f"dictionary of {values.size} values exceeds {_DICT_MAX_VALUES}"
        )
    cdtype = _narrowest(max(values.size - 1, 0))
    payload = values.astype(arr.dtype, copy=False).tobytes()
    payload += codes.astype(cdtype, copy=False).tobytes()
    return payload, {"nvals": int(values.size), "cdtype": cdtype.str}


def _encode_shuffle(arr: np.ndarray, width=None) -> Tuple[bytes, dict]:
    a = np.ascontiguousarray(arr)
    if a.dtype.itemsize > 1:
        w = a.dtype.itemsize
    else:
        # uint8 columns (payload) need the caller to supply the uniform
        # row width; without one a transpose has nothing to group.
        w = 0 if width is None else int(width)
    if w <= 1:
        raise CodecUnsuitable(f"shuffle needs a width > 1, got {w}")
    u8 = a.view(np.uint8)
    if u8.size % w:
        raise CodecUnsuitable(f"{u8.size} bytes not divisible by width {w}")
    return u8.reshape(-1, w).T.tobytes(), {"width": w}


_ENCODERS = {
    "raw": _encode_raw,
    "delta": _encode_delta,
    "dict": _encode_dict,
    "shuffle": _encode_shuffle,
}


def encode(codec: str, arr: np.ndarray, *, width=None) -> Tuple[bytes, dict]:
    """Filter ``arr`` through ``codec`` -> ``(payload, meta)``.

    ``payload`` is what gets deflated; ``meta`` is the (JSON-safe)
    per-block codec metadata the decoder needs.  Raises
    :class:`CodecUnsuitable` when the filter cannot apply, and
    ``KeyError`` on an unknown codec tag.
    """
    return _ENCODERS[codec](arr, width=width)


# ----------------------------------------------------------------------
# decode

def _decode_raw(buf, dtype: np.dtype, meta: dict) -> np.ndarray:
    # Zero-copy: the array aliases the inflated bytes.
    return np.frombuffer(buf, dtype=dtype)


def _decode_delta(buf, dtype: np.dtype, meta: dict) -> np.ndarray:
    sdtype = np.dtype(meta["sdtype"])
    first = int(meta["first"])
    zigzag = bool(meta.get("zz", 1))
    z = np.frombuffer(buf, dtype=sdtype)
    out = np.empty(z.size + 1, dtype=np.int64)
    out[0] = first
    if not zigzag:
        out[1:] = z  # plain non-negative deltas: upcast in place
    elif sdtype.itemsize < 8:
        zi = z.astype(np.int64)
        d = out[1:]
        np.right_shift(zi, 1, out=d)
        np.bitwise_and(zi, 1, out=zi)
        np.negative(zi, out=zi)
        np.bitwise_xor(d, zi, out=d)
    else:
        zu = z.astype(np.uint64)
        out[1:] = (
            (zu >> np.uint64(1)) ^ (np.uint64(0) - (zu & np.uint64(1)))
        ).view(np.int64)
    np.cumsum(out, out=out)
    return out.astype(dtype, copy=False)


def _decode_dict(buf, dtype: np.dtype, meta: dict) -> np.ndarray:
    nvals = int(meta["nvals"])
    cdtype = np.dtype(meta["cdtype"])
    split = nvals * dtype.itemsize
    if split > len(buf):
        raise ValueError(
            f"dictionary of {nvals} values needs {split} bytes, "
            f"stream holds {len(buf)}"
        )
    values = np.frombuffer(buf[:split], dtype=dtype)
    codes = np.frombuffer(buf[split:], dtype=cdtype)
    if codes.size and (nvals == 0 or int(codes.max()) >= nvals):
        raise ValueError("dictionary code out of range")
    return values[codes]


def _decode_shuffle(buf, dtype: np.dtype, meta: dict) -> np.ndarray:
    w = int(meta["width"])
    u8 = np.frombuffer(buf, dtype=np.uint8)
    if w <= 0 or u8.size % w:
        raise ValueError(f"{u8.size} shuffled bytes not divisible by width {w}")
    out = np.ascontiguousarray(u8.reshape(w, -1).T).reshape(-1)
    if dtype.itemsize > 1:
        if out.size % dtype.itemsize:
            raise ValueError(
                f"{out.size} bytes do not form whole {dtype} items"
            )
        return out.view(dtype)
    return out.view(dtype)


_DECODERS = {
    "raw": _decode_raw,
    "delta": _decode_delta,
    "dict": _decode_dict,
    "shuffle": _decode_shuffle,
}


def decode(codec: str, buf, dtype: np.dtype, meta: dict) -> np.ndarray:
    """Invert :func:`encode` over the inflated byte stream ``buf``.

    Returns an array of ``dtype``.  ``raw`` aliases ``buf`` (zero
    copy); filtered codecs allocate exactly one output array and
    un-filter with vectorised ops.  Raises ``ValueError`` on
    malformed input and ``KeyError`` on an unknown codec tag — the
    reader maps both onto ``TraceFormatError``.
    """
    return _DECODERS[codec](buf, np.dtype(dtype), dict(meta or {}))

"""Streaming per-bit occurrence counters.

This is the data structure behind the paper's cost argument (Section
V.E): whereas the Muter-entropy IDS must keep one counter per *distinct
identifier* (hundreds, growing with the catalog), the bit-slice method
needs exactly ``n_bits`` counters — 11 integers — no matter how many
identifiers are on the bus.

:class:`BitCounter` supports O(n_bits) streaming updates, vectorised
batch updates from identifier arrays, and counter arithmetic (merge and
subtract) so sliding windows can be maintained incrementally.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.can.constants import BASE_ID_BITS
from repro.exceptions import DetectorError

#: Width of the shared bit-decomposition lookup (11 = one base-frame id
#: per row).  Wider counters decompose ids into 11-bit chunks.
_DECOMP_BITS = BASE_ID_BITS

#: Precomputed bit decomposition: row ``v`` holds the 11 bits of ``v``,
#: MSB first.  This is a read-only module-level table shared by every
#: counter — the paper's O(n_bits) *state* claim is about the per-window
#: counters, which remain exactly ``n_bits`` integers.
_DECOMP_ROWS = (
    (np.arange(1 << _DECOMP_BITS)[:, None] >> np.arange(_DECOMP_BITS - 1, -1, -1))
    & 1
).astype(np.int64)


def _decomp_chunks(n_bits: int) -> tuple:
    """Split an ``n_bits`` identifier into lookup-table chunks.

    Returns ``(dst_lo, dst_hi, shift, col_lo)`` tuples, MSB chunk first:
    counts[dst_lo:dst_hi] accumulates ``_DECOMP_ROWS[(id >> shift) &
    0x7FF, col_lo:]``.
    """
    chunks = []
    remaining = n_bits
    while remaining > 0:
        width = remaining % _DECOMP_BITS or _DECOMP_BITS
        dst_lo = n_bits - remaining
        chunks.append(
            (dst_lo, dst_lo + width, remaining - width, _DECOMP_BITS - width)
        )
        remaining -= width
    return tuple(chunks)


def check_id_range(ids: np.ndarray, n_bits: int) -> None:
    """Reject identifier arrays with values outside ``n_bits`` bits.

    Shared by every vectorised counting path (batch engine, chunked
    feed) so their validation — and its error message — cannot diverge
    from the streaming counter's.
    """
    if ids.size and (int(ids.min()) < 0 or (int(ids.max()) >> n_bits)):
        bad = ids[(ids < 0) | (ids >> n_bits > 0)][0]
        raise DetectorError(
            f"identifier 0x{int(bad):X} does not fit in {n_bits} bits"
        )


def window_bit_counts(
    ids: np.ndarray, seg_starts: np.ndarray, n_bits: int
) -> np.ndarray:
    """Per-window, per-bit 1-counts via ``np.add.reduceat``.

    ``seg_starts`` are the window segment row starts (as produced by
    :meth:`ColumnTrace.window_segments`); returns an
    ``(n_windows, n_bits)`` int64 matrix, MSB first — exactly the
    counts ``BitCounter`` would accumulate streaming the same rows.
    """
    counts = np.empty((seg_starts.size, n_bits), dtype=np.int64)
    for bit in range(n_bits):
        column = (ids >> np.int64(n_bits - 1 - bit)) & np.int64(1)
        counts[:, bit] = np.add.reduceat(column, seg_starts)
    return counts


class BitCounter:
    """Counts, for each identifier bit, how many messages carried a 1.

    Bits are indexed MSB-first: index 0 is the paper's "Bit 1" (the most
    significant identifier bit, the one arbitration decides first).
    """

    __slots__ = ("n_bits", "_counts", "_total", "_chunks", "_rows")

    def __init__(self, n_bits: int = BASE_ID_BITS) -> None:
        if n_bits < 1:
            raise DetectorError(f"n_bits must be >= 1, got {n_bits}")
        self.n_bits = n_bits
        self._counts = np.zeros(n_bits, dtype=np.int64)
        self._total = 0
        self._chunks = _decomp_chunks(n_bits)
        # For table-width-or-narrower counters the whole decomposition is
        # one row of a (view on) the shared table; wider counters chunk.
        self._rows = (
            _DECOMP_ROWS[: 1 << n_bits, _DECOMP_BITS - n_bits :]
            if n_bits <= _DECOMP_BITS
            else None
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, can_id: int) -> None:
        """Account one identifier (O(n_bits) work and state).

        Uses the shared precomputed bit-decomposition table instead of a
        per-bit Python loop: one vectorised row-add per 11-bit chunk of
        the identifier (a single add for base-frame ids).
        """
        if can_id < 0 or can_id >> self.n_bits:
            raise DetectorError(
                f"identifier 0x{can_id:X} does not fit in {self.n_bits} bits"
            )
        if self._rows is not None:
            self._counts += self._rows[can_id]
        else:
            counts = self._counts
            for dst_lo, dst_hi, shift, col_lo in self._chunks:
                counts[dst_lo:dst_hi] += _DECOMP_ROWS[
                    (can_id >> shift) & ((1 << _DECOMP_BITS) - 1), col_lo:
                ]
        self._total += 1

    def update_many(self, can_ids: Iterable[int]) -> None:
        """Vectorised batch update from an iterable/array of identifiers."""
        ids = np.asarray(
            can_ids if isinstance(can_ids, np.ndarray) else list(can_ids),
            dtype=np.int64,
        )
        if ids.size == 0:
            return
        if ids.min() < 0 or (int(ids.max()) >> self.n_bits):
            bad = ids[(ids < 0) | (ids >> self.n_bits > 0)][0]
            raise DetectorError(
                f"identifier 0x{int(bad):X} does not fit in {self.n_bits} bits"
            )
        shifts = np.arange(self.n_bits - 1, -1, -1, dtype=np.int64)
        bits = (ids[:, None] >> shifts[None, :]) & 1
        self._counts += bits.sum(axis=0)
        self._total += ids.size

    def add_counts(self, counts: np.ndarray, total: int) -> None:
        """Add precomputed per-bit 1-counts (the batch chunk path).

        ``counts`` must be the ``n_bits``-long int count vector of
        ``total`` identifiers, e.g. one window segment's
        ``np.add.reduceat`` column sums.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != self._counts.shape:
            raise DetectorError(
                f"expected {self.n_bits} per-bit counts, got shape {counts.shape}"
            )
        if total < 0 or (counts.size and (counts.min() < 0 or counts.max() > total)):
            raise DetectorError("counts must lie in [0, total]")
        self._counts += counts
        self._total += int(total)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Number of identifiers accounted so far."""
        return self._total

    def counts(self) -> np.ndarray:
        """Per-bit 1-counts (copy; MSB first)."""
        return self._counts.copy()

    def probabilities(self) -> np.ndarray:
        """The paper's ``p_i`` vector; zeros when the counter is empty."""
        if self._total == 0:
            return np.zeros(self.n_bits, dtype=float)
        return self._counts / float(self._total)

    def is_empty(self) -> bool:
        """True when no identifier has been accounted."""
        return self._total == 0

    # ------------------------------------------------------------------
    # Arithmetic (for sliding windows)
    # ------------------------------------------------------------------
    def merge(self, other: "BitCounter") -> "BitCounter":
        """Add another counter's contents into this one (in place)."""
        self._check_compatible(other)
        self._counts += other._counts
        self._total += other._total
        return self

    def subtract(self, other: "BitCounter") -> "BitCounter":
        """Remove another counter's contents (for expiring window slices).

        Raises
        ------
        DetectorError
            If the subtraction would drive any count or the total
            negative — the slice being removed was never added.
        """
        self._check_compatible(other)
        if other._total > self._total or np.any(other._counts > self._counts):
            raise DetectorError("cannot subtract a counter that is not a subset")
        self._counts -= other._counts
        self._total -= other._total
        return self

    def copy(self) -> "BitCounter":
        """An independent copy."""
        clone = BitCounter(self.n_bits)
        clone._counts = self._counts.copy()
        clone._total = self._total
        return clone

    def reset(self) -> None:
        """Clear all counts."""
        self._counts[:] = 0
        self._total = 0

    def _check_compatible(self, other: "BitCounter") -> None:
        if not isinstance(other, BitCounter):
            raise DetectorError(f"expected BitCounter, got {type(other).__name__}")
        if other.n_bits != self.n_bits:
            raise DetectorError(
                f"bit width mismatch: {self.n_bits} vs {other.n_bits}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_ids(cls, can_ids: Iterable[int], n_bits: int = BASE_ID_BITS) -> "BitCounter":
        """Build a counter directly from identifiers."""
        counter = cls(n_bits)
        counter.update_many(can_ids)
        return counter

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitCounter):
            return NotImplemented
        return (
            self.n_bits == other.n_bits
            and self._total == other._total
            and bool(np.all(self._counts == other._counts))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitCounter(n_bits={self.n_bits}, total={self._total})"

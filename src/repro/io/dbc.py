"""A miniature message database (DBC-like) for signal decode/encode.

Real automotive work revolves around DBC files: per-message signal
layouts (bit position, length, scale, offset) that map raw payload bytes
to physical values.  This module implements a compact, self-contained
equivalent so the synthetic vehicle's payloads are inspectable the way a
practitioner expects:

* :class:`SignalDef` — one signal: big-endian bit slice + linear scaling;
* :class:`MessageDef` — a named message with its signals;
* :class:`MessageDatabase` — lookup by identifier, encode/decode, and a
  tiny text format (one line per message/signal) with load/save.

The IDS itself never reads payloads — the paper's method is ID-based —
but the database closes the loop for the examples and makes forged
payload *content* (scenario 2's "send wrong information out") concrete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.can.constants import MAX_BASE_ID, MAX_DLC
from repro.exceptions import TraceFormatError


@dataclass(frozen=True)
class SignalDef:
    """One signal inside a message payload.

    Bits are counted big-endian across the payload: bit 0 is the MSB of
    byte 0.  The physical value is ``raw * scale + offset``.
    """

    name: str
    start_bit: int
    length: int
    scale: float = 1.0
    offset: float = 0.0
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise TraceFormatError("signal name must be non-empty")
        if self.length < 1 or self.length > 64:
            raise TraceFormatError(f"signal {self.name}: length must be 1..64")
        if self.start_bit < 0:
            raise TraceFormatError(f"signal {self.name}: negative start bit")
        if self.scale == 0:
            raise TraceFormatError(f"signal {self.name}: zero scale")

    @property
    def end_bit(self) -> int:
        """One past the last payload bit this signal occupies."""
        return self.start_bit + self.length

    # ------------------------------------------------------------------
    def extract_raw(self, payload: bytes) -> int:
        """Raw (unscaled) integer value of the signal in ``payload``."""
        if self.end_bit > 8 * len(payload):
            raise TraceFormatError(
                f"signal {self.name} needs {self.end_bit} payload bits, "
                f"got {8 * len(payload)}"
            )
        value = 0
        for bit in range(self.start_bit, self.end_bit):
            byte_index, bit_index = divmod(bit, 8)
            value = (value << 1) | ((payload[byte_index] >> (7 - bit_index)) & 1)
        return value

    def decode(self, payload: bytes) -> float:
        """Physical value of the signal in ``payload``."""
        return self.extract_raw(payload) * self.scale + self.offset

    def encode_into(self, payload: bytearray, physical: float) -> None:
        """Write a physical value into ``payload`` (in place)."""
        raw = int(round((physical - self.offset) / self.scale))
        limit = (1 << self.length) - 1
        raw = max(0, min(limit, raw))
        for position, bit in enumerate(range(self.start_bit, self.end_bit)):
            byte_index, bit_index = divmod(bit, 8)
            mask = 1 << (7 - bit_index)
            if (raw >> (self.length - 1 - position)) & 1:
                payload[byte_index] |= mask
            else:
                payload[byte_index] &= ~mask


@dataclass(frozen=True)
class MessageDef:
    """A message: identifier, name, payload size, signals."""

    can_id: int
    name: str
    dlc: int
    signals: Tuple[SignalDef, ...] = ()

    def __post_init__(self) -> None:
        if not 0 <= self.can_id <= MAX_BASE_ID:
            raise TraceFormatError(f"message id 0x{self.can_id:X} out of range")
        if not 0 <= self.dlc <= MAX_DLC:
            raise TraceFormatError(f"message {self.name}: dlc out of range")
        names = [s.name for s in self.signals]
        if len(set(names)) != len(names):
            raise TraceFormatError(f"message {self.name}: duplicate signal names")
        for signal in self.signals:
            if signal.end_bit > 8 * self.dlc:
                raise TraceFormatError(
                    f"signal {signal.name} exceeds {self.name}'s {self.dlc}-byte payload"
                )

    def signal(self, name: str) -> SignalDef:
        """Look up a signal by name."""
        for candidate in self.signals:
            if candidate.name == name:
                return candidate
        raise KeyError(f"message {self.name} has no signal {name!r}")

    def decode(self, payload: bytes) -> Dict[str, float]:
        """Decode every signal from a payload."""
        return {signal.name: signal.decode(payload) for signal in self.signals}

    def encode(self, values: Dict[str, float]) -> bytes:
        """Build a payload from physical signal values (zeros elsewhere)."""
        payload = bytearray(self.dlc)
        for name, value in values.items():
            self.signal(name).encode_into(payload, value)
        return bytes(payload)


class MessageDatabase:
    """Identifier-indexed collection of :class:`MessageDef`."""

    def __init__(self, messages: Iterable[MessageDef] = ()) -> None:
        self._by_id: Dict[int, MessageDef] = {}
        for message in messages:
            self.add(message)

    def add(self, message: MessageDef) -> None:
        """Register a message (identifiers must be unique)."""
        if message.can_id in self._by_id:
            raise TraceFormatError(
                f"duplicate message id 0x{message.can_id:03X} in database"
            )
        self._by_id[message.can_id] = message

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, can_id: int) -> bool:
        return can_id in self._by_id

    def message(self, can_id: int) -> MessageDef:
        """Look up a message by identifier."""
        try:
            return self._by_id[can_id]
        except KeyError:
            raise KeyError(f"no message 0x{can_id:03X} in database") from None

    def messages(self) -> List[MessageDef]:
        """All messages, ascending by identifier."""
        return [self._by_id[i] for i in sorted(self._by_id)]

    def decode_record(self, can_id: int, payload: bytes) -> Dict[str, float]:
        """Decode a trace record's payload; empty dict for unknown ids."""
        if can_id not in self._by_id:
            return {}
        return self._by_id[can_id].decode(payload)

    # ------------------------------------------------------------------
    # Text format:
    #   MSG 1A4 EngineData 8
    #   SIG EngineSpeed 0 16 0.25 0 rpm
    # ------------------------------------------------------------------
    def dumps(self) -> str:
        """Serialise to the line-oriented text format."""
        lines: List[str] = []
        for message in self.messages():
            lines.append(f"MSG {message.can_id:X} {message.name} {message.dlc}")
            for signal in message.signals:
                unit = signal.unit or "-"
                lines.append(
                    f"SIG {signal.name} {signal.start_bit} {signal.length} "
                    f"{signal.scale:g} {signal.offset:g} {unit}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def loads(cls, text: str) -> "MessageDatabase":
        """Parse the line-oriented text format."""
        database = cls()
        current: Optional[Tuple[int, str, int, List[SignalDef]]] = None

        def flush() -> None:
            if current is not None:
                can_id, name, dlc, signals = current
                database.add(MessageDef(can_id, name, dlc, tuple(signals)))

        for lineno, raw_line in enumerate(text.splitlines(), start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            try:
                if fields[0] == "MSG":
                    flush()
                    current = (int(fields[1], 16), fields[2], int(fields[3]), [])
                elif fields[0] == "SIG":
                    if current is None:
                        raise TraceFormatError("SIG before any MSG")
                    unit = "" if fields[6] == "-" else fields[6]
                    current[3].append(
                        SignalDef(
                            name=fields[1],
                            start_bit=int(fields[2]),
                            length=int(fields[3]),
                            scale=float(fields[4]),
                            offset=float(fields[5]),
                            unit=unit,
                        )
                    )
                else:
                    raise TraceFormatError(f"unknown directive {fields[0]!r}")
            except (IndexError, ValueError) as exc:
                raise TraceFormatError(f"line {lineno}: {exc}") from exc
        flush()
        return database

    def save(self, path: Union[str, Path]) -> None:
        """Write the database to a file."""
        Path(path).write_text(self.dumps(), encoding="ascii")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "MessageDatabase":
        """Read a database written by :meth:`save`."""
        return cls.loads(Path(path).read_text(encoding="ascii"))


def database_for_catalog(catalog) -> MessageDatabase:
    """Generate a plausible signal database for a vehicle catalog.

    Every periodic powertrain/chassis message gets a 4-bit rolling
    counter, a 16-bit sensor channel and an 8-bit checksum (matching the
    payload generators in :mod:`repro.vehicle.signals`); body/comfort
    messages get status flags.  This is tooling realism, not something
    the IDS consumes.
    """
    database = MessageDatabase()
    for entry in catalog:
        dlc = max(1, entry.dlc)
        signals: List[SignalDef] = [
            SignalDef("Counter", 0, 4, 1.0, 0.0, "count")
        ]
        if entry.cluster in ("powertrain", "chassis") and dlc >= 3:
            signals.append(SignalDef("Sensor", 8, 16, 0.1, -100.0, "unit"))
            signals.append(SignalDef("Checksum", 8 * (dlc - 1), 8))
        elif dlc >= 2:
            signals.append(SignalDef("Flags", 8, min(8, 8 * (dlc - 1))))
        database.add(
            MessageDef(
                can_id=entry.can_id,
                name=entry.name,
                dlc=dlc,
                signals=tuple(s for s in signals if s.end_bit <= 8 * dlc),
            )
        )
    return database

"""Runner aggregation logic and the CI integration (fast, no simulation)."""

import pytest

from repro.experiments.runner import AttackRun, ScenarioResult
from repro.experiments.scenarios import scenario


def make_run(freq, dr, n_injected, hit=None, ir=0.8, fpr=0.0, detected=True):
    return AttackRun(
        scenario="single",
        frequency_hz=freq,
        seed=1,
        injection_rate=ir,
        n_injected=n_injected,
        detection_rate=dr,
        false_positive_rate=fpr,
        detection_latency_us=2_000_000 if detected else None,
        detected=detected,
        hit_rate=hit,
        ids_used=(0x100,),
        candidates=(0x100, 0x200),
    )


class TestScenarioAggregation:
    def test_detection_rate_message_weighted(self):
        result = ScenarioResult(spec=scenario("single"))
        result.runs = [
            make_run(100, 1.0, 900),
            make_run(10, 0.0, 100),
        ]
        assert result.detection_rate == pytest.approx(0.9)

    def test_empty_runs(self):
        result = ScenarioResult(spec=scenario("single"))
        assert result.detection_rate == 0.0
        assert result.mean_injection_rate == 0.0
        assert result.false_positive_rate == 0.0
        assert result.detection_rate_ci() == (0.0, 0.0, 0.0)

    def test_inference_accuracy_over_detected_only(self):
        result = ScenarioResult(spec=scenario("single"))
        result.runs = [
            make_run(100, 1.0, 900, hit=1.0),
            make_run(10, 0.0, 100, hit=None, detected=False),
        ]
        assert result.inference_accuracy == 1.0

    def test_flood_has_no_inference(self):
        result = ScenarioResult(spec=scenario("flood"))
        result.runs = [make_run(500, 1.0, 900)]
        assert result.inference_accuracy is None

    def test_by_frequency_grouping(self):
        result = ScenarioResult(spec=scenario("single"))
        result.runs = [
            make_run(100, 1.0, 500),
            make_run(100, 0.8, 500),
            make_run(10, 0.2, 100),
        ]
        by_freq = result.by_frequency()
        assert by_freq[100.0] == pytest.approx(0.9)
        assert by_freq[10.0] == pytest.approx(0.2)

    def test_detection_rate_ci_brackets_point(self):
        result = ScenarioResult(spec=scenario("single"))
        result.runs = [
            make_run(100, 0.95, 800),
            make_run(50, 0.9, 400),
            make_run(20, 0.5, 150),
            make_run(10, 0.1, 80),
        ]
        point, low, high = result.detection_rate_ci()
        assert low <= point <= high
        assert point == pytest.approx(result.detection_rate)

    def test_mean_rates(self):
        result = ScenarioResult(spec=scenario("single"))
        result.runs = [
            make_run(100, 1.0, 500, ir=0.9, fpr=0.0),
            make_run(10, 0.5, 100, ir=0.7, fpr=0.1),
        ]
        assert result.mean_injection_rate == pytest.approx(0.8)
        assert result.false_positive_rate == pytest.approx(0.05)

"""FleetStore: on-disk layout, template persistence, atomicity."""

import json

import numpy as np
import pytest

from repro.exceptions import TemplateError, TraceFormatError
from repro.fleet import FleetStore
from repro.vehicle.traffic import simulate_drive


@pytest.fixture()
def store(tmp_path):
    return FleetStore(tmp_path / "fleet")


class TestVehicles:
    def test_construction_is_side_effect_free(self, tmp_path):
        """Read-only commands must never materialise a typo'd store."""
        store = FleetStore(tmp_path / "typo")
        assert store.vehicles() == []
        assert len(store) == 0
        assert not (tmp_path / "typo").exists()
        with pytest.raises(TraceFormatError, match="does not exist"):
            store.archive("car-a")
        assert not (tmp_path / "typo").exists()

    def test_add_and_enumerate_sorted(self, store):
        store.add_vehicle("car-b")
        store.add_vehicle("car-a")
        assert store.vehicles() == ["car-a", "car-b"]
        assert len(store) == 2
        assert store.has_vehicle("car-a") and not store.has_vehicle("car-c")

    def test_add_vehicle_idempotent(self, store):
        assert store.add_vehicle("car-a") == store.add_vehicle("car-a")

    @pytest.mark.parametrize("bad", ["", "../evil", "a/b", ".hidden", "-x"])
    def test_invalid_vehicle_ids_rejected(self, store, bad):
        with pytest.raises(TraceFormatError):
            store.add_vehicle(bad)


class TestCaptures:
    def test_add_capture_and_archive(self, store, catalog):
        trace = simulate_drive(4.0, seed=3, catalog=catalog)
        path = store.add_capture("car-a", "d0.log", trace)
        assert path.parent == store.captures_dir("car-a")
        archive = store.archive("car-a")
        assert [p.name for p in archive.paths] == ["d0.log"]
        assert archive.load(0) == trace.to_columns()

    def test_name_collision_refused_without_overwrite(self, store, catalog):
        """The store is the vehicle's persistent history; replacing a
        capture must be an explicit decision."""
        first = simulate_drive(3.0, seed=5, catalog=catalog)
        second = simulate_drive(3.0, seed=6, catalog=catalog)
        store.add_capture("car-a", "d0.log", first)
        with pytest.raises(TraceFormatError, match="overwrite"):
            store.add_capture("car-a", "d0.log", second)
        assert store.archive("car-a").load(0) == first.to_columns()
        store.add_capture("car-a", "d0.log", second, overwrite=True)
        assert store.archive("car-a").load(0) == second.to_columns()

    def test_gzip_capture_enumerated(self, store, catalog):
        trace = simulate_drive(3.0, seed=4, catalog=catalog)
        store.add_capture("car-a", "d0.log.gz", trace)
        archive = store.archive("car-a")
        assert [p.name for p in archive.paths] == ["d0.log.gz"]
        assert archive.load(0) == trace.to_columns()


class TestTemplates:
    def test_save_load_round_trip(self, store, golden_template):
        store.save_template("car-a", golden_template)
        assert store.has_template("car-a")
        loaded = store.load_template("car-a")
        assert np.array_equal(loaded.mean_entropy, golden_template.mean_entropy)
        assert np.array_equal(loaded.thresholds, golden_template.thresholds)

    def test_missing_template_raises(self, store):
        store.add_vehicle("car-a")
        with pytest.raises(TemplateError):
            store.load_template("car-a")

    def test_training_window_recorded_and_readable(self, store, golden_template):
        """The training window rides inside template.json (ignored by
        the plain loader) so scan commands can refuse a mismatch."""
        store.save_template("car-a", golden_template, window_us=1_000_000)
        assert store.template_window_us("car-a") == 1_000_000
        loaded = store.load_template("car-a")  # extra key is harmless
        assert np.array_equal(loaded.mean_entropy, golden_template.mean_entropy)
        store.save_template("car-b", golden_template)  # window unrecorded
        assert store.template_window_us("car-b") is None
        assert store.template_window_us("car-c") is None  # no template

    @pytest.mark.parametrize("payload", ["{ torn", "null"])
    def test_corrupt_template_raises_template_error(
        self, store, golden_template, payload
    ):
        """One diagnosable exception type, never a raw JSON traceback."""
        store.save_template("car-a", golden_template, window_us=2_000_000)
        store.template_path("car-a").write_text(payload)
        with pytest.raises(TemplateError, match="corrupt"):
            store.template_window_us("car-a")
        with pytest.raises(TemplateError, match="corrupt|missing"):
            store.load_template("car-a")

    def test_template_write_is_atomic(self, store, golden_template):
        """No temp-file litter and valid JSON after every save (the
        crash-safety satellite extends to template writes)."""
        store.save_template("car-a", golden_template)
        store.save_template("car-a", golden_template)
        directory = store.vehicle_dir("car-a")
        names = {p.name for p in directory.iterdir()}
        assert names == {"captures", "template.json"}
        json.loads(store.template_path("car-a").read_text())


class TestBusTemplates:
    def test_per_bus_round_trip(self, store, golden_template):
        mapping = {
            "high_speed": golden_template,
            "middle_speed": golden_template,
        }
        paths = store.save_bus_templates("car-a", mapping)
        assert set(paths) == set(mapping)
        assert all(p.is_file() for p in paths.values())
        loaded = store.load_bus_templates("car-a")
        assert set(loaded) == {"high_speed", "middle_speed"}
        for template in loaded.values():
            assert np.array_equal(
                template.mean_entropy, golden_template.mean_entropy
            )

    def test_label_round_trips_through_payload(self, store, golden_template):
        """Labels that need filename escaping still round-trip exactly
        (the label lives inside the file, not in its name)."""
        store.save_bus_templates("car-a", {"body/comfort bus": golden_template})
        assert list(store.load_bus_templates("car-a")) == ["body/comfort bus"]

    def test_empty_without_saves(self, store):
        store.add_vehicle("car-a")
        assert store.load_bus_templates("car-a") == {}
        assert store.bus_template_files("car-a") == []

    def test_file_count_survives_corrupt_template(self, store, golden_template):
        """The cheap probe keeps working when a template file is torn
        (fleet status relies on it); the real loader is rightly strict."""
        paths = store.save_bus_templates("car-a", {"high_speed": golden_template})
        paths["high_speed"].write_text("{ torn")
        assert len(store.bus_template_files("car-a")) == 1
        with pytest.raises(Exception):
            store.load_bus_templates("car-a")

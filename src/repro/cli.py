"""Command-line interface: ``repro-ids``.

Subcommands mirror the workflow of the paper's evaluation:

* ``simulate`` — record a clean drive to a candump/CSV trace;
* ``attack``   — record a drive with an injected attack;
* ``template`` — build a golden template from clean traces;
* ``detect``   — run the detector (and inference) over a trace;
* ``scan-archive`` — scan a whole directory of captures, sharded
  across worker processes;
* ``fig2`` / ``fig3`` / ``table1`` / ``stability`` / ``cost`` — regenerate
  the paper's artifacts.

Examples::

    repro-ids simulate --duration 30 --out drive.log
    repro-ids template --windows 35 --out template.json
    repro-ids attack --attack single --id 0x1A4 --freq 50 --out attack.log
    repro-ids detect --template template.json --trace attack.log --infer
    repro-ids scan-archive --template template.json --dir captures/ --workers 4
    repro-ids table1 --seeds 1 2
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro._version import __version__


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {text}")
    return value


def _can_id(text: str) -> int:
    value = int(text, 0)
    if not 0 <= value <= 0x7FF:
        raise argparse.ArgumentTypeError(f"identifier {text} out of 11-bit range")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-ids",
        description="Bit-entropy CAN intrusion detection (SOCC 2018 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="record a clean drive")
    simulate.add_argument("--duration", type=_positive_float, default=20.0)
    simulate.add_argument("--scenario", default="city")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--out", type=Path, required=True)

    attack = sub.add_parser("attack", help="record a drive with an injected attack")
    attack.add_argument(
        "--attack",
        choices=["flood", "single", "multi", "weak"],
        default="single",
    )
    attack.add_argument("--id", dest="can_ids", type=_can_id, action="append",
                        help="injected identifier (repeat for multi)")
    attack.add_argument("--freq", type=_positive_float, default=50.0)
    attack.add_argument("--start", type=_positive_float, default=2.0)
    attack.add_argument("--attack-duration", type=_positive_float, default=10.0)
    attack.add_argument("--duration", type=_positive_float, default=14.0)
    attack.add_argument("--scenario", default="city")
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument("--out", type=Path, required=True)

    template = sub.add_parser("template", help="build a golden template")
    template.add_argument("--windows", type=int, default=35)
    template.add_argument("--window-s", type=_positive_float, default=2.0)
    template.add_argument("--alpha", type=_positive_float, default=3.0)
    template.add_argument("--seed", type=int, default=7)
    template.add_argument("--traces", type=Path, nargs="*", default=[],
                          help="clean trace files; simulated drives if omitted")
    template.add_argument("--out", type=Path, required=True)

    detect = sub.add_parser("detect", help="scan a trace with a template")
    detect.add_argument("--template", type=Path, required=True)
    detect.add_argument("--trace", type=Path, required=True)
    detect.add_argument("--infer", action="store_true",
                        help="also infer malicious-ID candidates")
    detect.add_argument("--infer-k", type=int, default=1)

    scan_archive = sub.add_parser(
        "scan-archive",
        help="scan a directory of captures, sharded across processes",
    )
    scan_archive.add_argument("--template", type=Path, required=True)
    scan_archive.add_argument("--dir", dest="archive_dir", type=Path, required=True,
                              help="directory of candump/CSV capture files")
    scan_archive.add_argument("--workers", type=int, default=None,
                              help="pool size (default: one per core, capped)")
    scan_archive.add_argument("--recursive", action="store_true",
                              help="also scan subdirectories")
    scan_archive.add_argument("--infer", action="store_true",
                              help="infer malicious-ID candidates per alarmed capture")
    scan_archive.add_argument("--infer-k", type=int, default=1,
                              help="injected identifiers assumed per capture")

    for name, helptext in [
        ("fig2", "regenerate Fig. 2 (template vs attack)"),
        ("fig3", "regenerate Fig. 3 (injection/detection vs ID)"),
        ("table1", "regenerate Table I"),
        ("stability", "regenerate the entropy stability experiment"),
        ("cost", "regenerate the Sec. V.E cost comparison"),
    ]:
        exp = sub.add_parser(name, help=helptext)
        exp.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------

def _write_trace(trace, path: Path) -> None:
    from repro.io import write_candump, write_csv

    if path.suffix.lower() == ".csv":
        write_csv(trace, path)
    else:
        write_candump(trace, path)


def _read_trace(path: Path):
    from repro.io import read_candump, read_csv

    if path.suffix.lower() == ".csv":
        return read_csv(path)
    return read_candump(path)


def _cmd_simulate(args) -> int:
    from repro.vehicle.traffic import simulate_drive

    trace = simulate_drive(args.duration, scenario=args.scenario, seed=args.seed)
    _write_trace(trace, args.out)
    print(f"wrote {len(trace)} frames ({trace.message_rate_hz():.0f} msg/s) to {args.out}")
    return 0


def _cmd_attack(args) -> int:
    from repro.attacks import (
        FloodingAttacker,
        MultiIDAttacker,
        SingleIDAttacker,
        WeakAttacker,
    )
    from repro.vehicle import VehicleSimulation, ford_fusion_catalog
    from repro.vehicle.ecu_profiles import assignments_for

    catalog = ford_fusion_catalog(seed=0)
    sim = VehicleSimulation(catalog=catalog, scenario=args.scenario, seed=args.seed)
    common = dict(
        frequency_hz=args.freq,
        start_s=args.start,
        duration_s=args.attack_duration,
        seed=args.seed,
    )
    ids = args.can_ids or []
    if args.attack == "flood":
        attacker = FloodingAttacker(**common)
    elif args.attack == "single":
        attacker = SingleIDAttacker(can_id=ids[0] if ids else catalog.ids[60], **common)
    elif args.attack == "multi":
        chosen = ids if len(ids) >= 2 else [catalog.ids[60], catalog.ids[120]]
        attacker = MultiIDAttacker(chosen, **common)
    else:
        assignments = assignments_for(catalog)
        ecu = sorted(assignments)[0]
        attacker = WeakAttacker(sorted(assignments[ecu]), **common)
    sim.add_node(attacker)
    trace = sim.run(args.duration)
    _write_trace(trace, args.out)
    print(f"wrote {len(trace)} frames to {args.out}")
    print(attacker.describe())
    return 0


def _cmd_template(args) -> int:
    from repro.core import IDSConfig, TemplateBuilder
    from repro.vehicle.traffic import record_template_windows

    config = IDSConfig(
        alpha=args.alpha,
        window_us=int(args.window_s * 1e6),
        template_windows=max(2, args.windows),
    )
    builder = TemplateBuilder(config)
    if args.traces:
        for path in args.traces:
            builder.add_trace_windows(_read_trace(path))
    else:
        for window in record_template_windows(
            n_windows=args.windows, window_s=args.window_s, seed=args.seed
        ):
            builder.add_trace(window)
    template = builder.build()
    template.save(args.out)
    print(f"template from {template.n_windows} windows written to {args.out}")
    print(template.describe())
    return 0


def _cmd_detect(args) -> int:
    from repro.core import GoldenTemplate, IDSConfig, IDSPipeline
    from repro.io.archive import load_capture_columns
    from repro.vehicle import ford_fusion_catalog

    template = GoldenTemplate.load(args.template)
    config = IDSConfig(alpha=template.alpha)
    pool = ford_fusion_catalog(seed=0).ids if args.infer else None
    pipeline = IDSPipeline(template, config, id_pool=pool)
    trace = load_capture_columns(args.trace)  # columnar-native load
    report = pipeline.analyze(trace, infer_k=args.infer_k)
    print(report.summary())
    return 0 if not report.alarmed_windows else 2


def _cmd_scan_archive(args) -> int:
    from repro.core import GoldenTemplate, IDSConfig, IDSPipeline
    from repro.io import CaptureArchive
    from repro.vehicle import ford_fusion_catalog

    template = GoldenTemplate.load(args.template)
    config = IDSConfig(alpha=template.alpha)
    pool = ford_fusion_catalog(seed=0).ids if args.infer else None
    pipeline = IDSPipeline(template, config, id_pool=pool)
    archive = CaptureArchive(args.archive_dir, recursive=args.recursive)
    if not len(archive):
        print(f"no captures found under {args.archive_dir}")
        return 1
    report = pipeline.analyze_archive(
        archive, workers=args.workers, infer_k=args.infer_k
    )
    print(report.summary())
    for path, capture in report.captures:
        if capture.inference is not None:
            ids = ", ".join(f"0x{c:03X}" for c in capture.inference.candidates)
            print(f"{path.name}: inferred candidates (rank order): {ids}")
    return 0 if not report.alarmed_captures else 2


def _cmd_experiment(args) -> int:
    from repro.experiments import fig2, fig3, stability, table1
    from repro.experiments import cost as cost_experiment

    seeds = tuple(args.seeds)
    if args.command == "fig2":
        print(fig2.run(seed=seeds[0]).render())
    elif args.command == "fig3":
        print(fig3.run(seeds=seeds).render())
    elif args.command == "table1":
        print(table1.run(seeds=seeds).render())
    elif args.command == "stability":
        print(stability.run(seed=seeds[0]).render())
    else:
        print(cost_experiment.run(seeds=seeds).render())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "attack": _cmd_attack,
        "template": _cmd_template,
        "detect": _cmd_detect,
        "scan-archive": _cmd_scan_archive,
        "fig2": _cmd_experiment,
        "fig3": _cmd_experiment,
        "table1": _cmd_experiment,
        "stability": _cmd_experiment,
        "cost": _cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

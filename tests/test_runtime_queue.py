"""Work-queue protocol details: claiming, recovery, poison tasks.

The parity suite proves a healthy queue is bit-identical to a serial
scan; this suite proves the queue *stays* healthy when the world
misbehaves — racing claimants, dead workers, malformed or failing
tasks, stop requests.
"""

import json
import os
import time

import pytest

from repro.core import IDSPipeline
from repro.exceptions import DetectorError
from repro.runtime import (
    EntropyScanSpec,
    WorkQueueExecutor,
    claim_next_task,
    execute_claimed_task,
    queue_dirs,
    run_worker,
)
from repro.vehicle.traffic import simulate_drive


@pytest.fixture()
def capture_path(tmp_path, catalog):
    from repro.io import write_candump

    path = tmp_path / "drive.log"
    write_candump(simulate_drive(5.0, seed=31, catalog=catalog), path)
    return path


@pytest.fixture()
def spec(golden_template, ids_config):
    return EntropyScanSpec(golden_template, ids_config)


def post_tasks(queue_dir, spec, paths):
    """Post tasks without collecting (exercises the claim side alone)."""
    executor = WorkQueueExecutor(queue_dir)
    return executor._post(spec, [str(p) for p in paths])


class TestClaimProtocol:
    def test_exactly_one_claimant_wins(self, tmp_path, spec, capture_path):
        queue = tmp_path / "queue"
        post_tasks(queue, spec, [capture_path])
        first = claim_next_task(queue)
        second = claim_next_task(queue)
        assert first is not None and first.parent.name == "claimed"
        assert second is None  # the task left tasks/ atomically

    def test_claims_oldest_task_first(self, tmp_path, spec, capture_path):
        queue = tmp_path / "queue"
        job = post_tasks(queue, spec, [capture_path, capture_path])
        assert claim_next_task(queue).name == f"{job}-000000.json"
        assert claim_next_task(queue).name == f"{job}-000001.json"

    def test_job_filter_ignores_other_jobs(self, tmp_path, spec, capture_path):
        queue = tmp_path / "queue"
        post_tasks(queue, spec, [capture_path])
        assert claim_next_task(queue, job="deadbeef") is None
        assert claim_next_task(queue) is not None

    def test_executed_task_round_trips_result(
        self, tmp_path, spec, capture_path, golden_template, ids_config
    ):
        queue = tmp_path / "queue"
        job = post_tasks(queue, spec, [capture_path])
        claimed = claim_next_task(queue)
        assert execute_claimed_task(claimed, {})
        _, _, results, _ = queue_dirs(queue)
        outcome = json.loads(
            (results / f"{job}-000000.json").read_text()
        )
        from repro.io.archive import load_capture_columns

        windows = spec.decode_result(outcome["result"])
        expected = IDSPipeline(golden_template, ids_config).analyze(
            load_capture_columns(capture_path)
        )
        assert [w.to_dict() for w in windows] == [
            w.to_dict() for w in expected.windows
        ]
        assert not claimed.exists()  # consumed


class TestFailureModes:
    def test_malformed_task_quarantined(self, tmp_path):
        queue = tmp_path / "queue"
        tasks, claimed_dir, _, failed = queue_dirs(queue)
        (tasks / "bogus-000000.json").write_text("{not json", encoding="ascii")
        claimed = claim_next_task(queue)
        assert not execute_claimed_task(claimed, {})
        assert [p.name for p in failed.iterdir()] == ["bogus-000000.json"]

    def test_worker_survives_poison_task(self, tmp_path, spec, capture_path):
        """A malformed task must be quarantined, and the real work after
        it must still complete."""
        queue = tmp_path / "queue"
        tasks, _, _, failed = queue_dirs(queue)
        (tasks / "aaaa-000000.json").write_text("torn", encoding="ascii")
        post_tasks(queue, spec, [capture_path])
        stats = run_worker(queue, poll_s=0.01, max_idle_s=0.1)
        assert stats.executed == 1 and stats.quarantined == 1
        assert len(list(failed.iterdir())) == 1

    def test_scan_error_degrades_to_local_execution(
        self, tmp_path, spec, capture_path
    ):
        """A worker's error result must not abort a drainable scan: the
        coordinator retries the task locally (e.g. the worker's host is
        missing a mount) and only a local failure propagates."""
        queue = tmp_path / "queue"
        executor = WorkQueueExecutor(queue, timeout_s=60.0, poll_s=0.01)
        job = executor._post(spec, [str(capture_path)])
        _, _, results, _ = queue_dirs(queue)
        # Simulate a remote worker that could not read the capture.
        (results / f"{job}-000000.json").write_text(
            json.dumps({"version": 1, "job": job, "index": 0,
                        "error": "OSError: no such mount"}),
            encoding="ascii",
        )
        # Re-enter the collect loop without re-posting: the error result
        # is already waiting and answers before any draining happens.
        executor._post = lambda *a, **k: job
        result = executor.run(spec, [capture_path])
        assert len(result) == 1 and result[0]  # locally re-executed

    def test_scan_error_raises_when_draining_forbidden(
        self, tmp_path, spec, capture_path
    ):
        """Without coordinator draining there is no local fallback: an
        error result surfaces instead of hanging."""
        queue = tmp_path / "queue"
        executor = WorkQueueExecutor(
            queue, timeout_s=60.0, poll_s=0.01, coordinator_drains=False
        )
        job = executor._post(spec, [str(capture_path)])
        _, _, results, _ = queue_dirs(queue)
        (results / f"{job}-000000.json").write_text(
            json.dumps({"version": 1, "job": job, "index": 0,
                        "error": "OSError: no such mount"}),
            encoding="ascii",
        )
        executor._post = lambda *a, **k: job
        with pytest.raises(DetectorError, match="worker failed scanning"):
            executor.run(spec, [capture_path])

    def test_corrupt_result_file_quarantined_then_drained_locally(
        self, tmp_path, spec, capture_path
    ):
        """A truncated/garbage *result* file (torn NFS write, disk
        fault) must never crash the drain loop: it is quarantined as
        evidence and the task is retried locally."""
        queue = tmp_path / "queue"
        executor = WorkQueueExecutor(queue, timeout_s=60.0, poll_s=0.01)
        job = executor._post(spec, [str(capture_path)])
        _, _, results, failed = queue_dirs(queue)
        (results / f"{job}-000000.json").write_text(
            '{"version": 1, "job": "' + job + '", "ind',  # torn mid-write
            encoding="ascii",
        )
        executor._post = lambda *a, **k: job
        result = executor.run(spec, [capture_path])
        assert len(result) == 1 and result[0]  # locally re-executed
        quarantined = list(failed.glob("*.json.corrupt"))
        assert [p.name for p in quarantined] == [f"{job}-000000.json.corrupt"]

    def test_corrupt_result_file_raises_diagnostic_without_draining(
        self, tmp_path, spec, capture_path
    ):
        """No-drain mode has no local fallback: the corruption surfaces
        as a clean diagnostic naming the quarantined evidence file."""
        queue = tmp_path / "queue"
        executor = WorkQueueExecutor(
            queue, timeout_s=60.0, poll_s=0.01, coordinator_drains=False
        )
        job = executor._post(spec, [str(capture_path)])
        _, _, results, _ = queue_dirs(queue)
        (results / f"{job}-000000.json").write_text(
            "\x00garbage\x00", encoding="ascii"
        )
        executor._post = lambda *a, **k: job
        with pytest.raises(DetectorError, match="corrupt result file"):
            executor.run(spec, [capture_path])

    def test_unparseable_result_filename_quarantined_not_fatal(
        self, tmp_path, spec, capture_path
    ):
        """A result file whose *name* does not parse to a task index is
        quarantined and the scan still completes via the drain loop."""
        queue = tmp_path / "queue"
        executor = WorkQueueExecutor(queue, timeout_s=60.0, poll_s=0.01)
        job = executor._post(spec, [str(capture_path)])
        _, _, results, failed = queue_dirs(queue)
        (results / f"{job}-not-an-index.json").write_text(
            "garbage", encoding="ascii"
        )
        executor._post = lambda *a, **k: job
        result = executor.run(spec, [capture_path])
        assert len(result) == 1 and result[0]
        assert [p.name for p in failed.glob("*.corrupt")] == [
            f"{job}-not-an-index.json.corrupt"
        ]

    def test_truly_bad_capture_fails_with_local_exception(self, tmp_path, spec):
        """A capture that is genuinely unreadable fails the local retry
        too — with the real exception, not a relayed string."""
        queue = tmp_path / "queue"
        executor = WorkQueueExecutor(queue, timeout_s=60.0, poll_s=0.01)
        with pytest.raises(Exception) as excinfo:
            executor.run(spec, [tmp_path / "missing.log"])
        assert not isinstance(excinfo.value, DetectorError)  # the true error

    def test_claim_restamps_mtime(self, tmp_path, spec, capture_path):
        """A task that queued for ages must get the full stale_claim_s
        grace from the moment it is claimed, not from posting."""
        queue = tmp_path / "queue"
        job = post_tasks(queue, spec, [capture_path])
        tasks, _, _, _ = queue_dirs(queue)
        old = time.time() - 3600
        posted = tasks / f"{job}-000000.json"
        os.utime(posted, (old, old))
        claimed = claim_next_task(queue)
        assert time.time() - claimed.stat().st_mtime < 60

    def test_stale_claim_reposted_and_completed(
        self, tmp_path, spec, capture_path
    ):
        """A claim whose worker died (old mtime, no result) goes back to
        tasks/ and the scan still completes."""
        queue = tmp_path / "queue"
        job = post_tasks(queue, spec, [capture_path])
        claimed = claim_next_task(queue)
        stale = time.time() - 3600
        os.utime(claimed, (stale, stale))
        executor = WorkQueueExecutor(
            queue, timeout_s=60.0, stale_claim_s=1.0, poll_s=0.01
        )
        # Collect the *already posted* job by re-posting nothing: run a
        # fresh scan over the same path; the stale claim from the dead
        # job is irrelevant to it and gets cleaned by its own job scope.
        result = executor.run(spec, [capture_path])
        assert len(result) == 1 and result[0]
        # Now drain the orphaned job directly: repost + drain by hand.
        executor._repost_stale_claims(job)
        reclaimed = claim_next_task(queue, job)
        assert reclaimed is not None and execute_claimed_task(reclaimed, {})

    def test_quarantined_own_task_raises_instead_of_hanging(
        self, tmp_path, spec, capture_path
    ):
        """If one of THIS job's task files is unparseable (torn by an IO
        fault, foreign protocol version), no result will ever arrive for
        it — the coordinator must raise, not wait forever."""
        queue = tmp_path / "queue"
        executor = WorkQueueExecutor(queue, timeout_s=60.0, poll_s=0.01)
        job = executor._post(spec, [str(capture_path)])
        tasks, _, _, _ = queue_dirs(queue)
        (tasks / f"{job}-000000.json").write_text("{torn", encoding="ascii")
        # Re-enter the collect loop the way run() does, without re-posting.
        original_post = executor._post
        executor._post = lambda *a, **k: job
        try:
            with pytest.raises(DetectorError, match="quarantined task"):
                executor.run(spec, [capture_path])
        finally:
            executor._post = original_post
        # The error message points the operator at failed/; cleanup must
        # preserve that evidence (the orphan TTL sweeps it eventually).
        _, _, _, failed = queue_dirs(queue)
        assert [p.name for p in failed.glob("*.json")] == [
            f"{job}-000000.json"
        ]

    def test_foreign_quarantine_does_not_kill_a_job(
        self, tmp_path, spec, capture_path
    ):
        """Another job's poison task in failed/ is not this job's error."""
        queue = tmp_path / "queue"
        _, _, _, failed = queue_dirs(queue)
        (failed / "feedface-000000.json").write_text("junk", encoding="ascii")
        executor = WorkQueueExecutor(queue, timeout_s=60.0)
        assert len(executor.run(spec, [capture_path])) == 1
        assert (failed / "feedface-000000.json").exists()  # untouched

    def test_orphaned_files_swept_at_job_start(
        self, tmp_path, spec, capture_path
    ):
        """Leftovers of dead jobs (SIGKILLed coordinator, late worker)
        age out instead of accumulating forever."""
        queue = tmp_path / "queue"
        _, _, results, failed = queue_dirs(queue)
        old = time.time() - 7200
        for path in (results / "dead-000000.json", failed / "dead-000001.json"):
            path.write_text("{}", encoding="ascii")
            os.utime(path, (old, old))
        fresh = results / "live-000000.json"
        fresh.write_text("{}", encoding="ascii")
        executor = WorkQueueExecutor(queue, timeout_s=60.0, orphan_ttl_s=3600.0)
        executor.run(spec, [capture_path])
        assert not (results / "dead-000000.json").exists()
        assert not (failed / "dead-000001.json").exists()
        assert fresh.exists()  # younger than the TTL: maybe still live

    def test_timeout_without_progress(self, tmp_path, spec, capture_path):
        queue = tmp_path / "queue"
        executor = WorkQueueExecutor(
            queue, coordinator_drains=False, timeout_s=0.3, poll_s=0.02
        )
        with pytest.raises(DetectorError, match="no progress"):
            executor.run(spec, [capture_path])

    def test_empty_path_list(self, tmp_path, spec):
        assert WorkQueueExecutor(tmp_path / "q").run(spec, []) == []

    def test_queue_cleaned_after_run(self, tmp_path, spec, capture_path):
        queue = tmp_path / "queue"
        executor = WorkQueueExecutor(queue, timeout_s=60.0)
        executor.run(spec, [capture_path, capture_path])
        for d in queue_dirs(queue):
            assert list(d.glob("*.json")) == [], d


class TestWorkerLoop:
    def test_stop_file_stops_worker(self, tmp_path):
        queue = tmp_path / "queue"
        queue_dirs(queue)
        (queue / "stop").touch()
        stats = run_worker(queue, poll_s=0.01)
        assert stats.executed == 0 and "stop file" in stats.stop_reason

    def test_max_tasks_bounds_worker(self, tmp_path, spec, capture_path):
        queue = tmp_path / "queue"
        post_tasks(queue, spec, [capture_path, capture_path])
        stats = run_worker(queue, poll_s=0.01, max_tasks=1)
        assert stats.executed == 1 and "max tasks" in stats.stop_reason

    def test_idle_timeout_stops_worker(self, tmp_path):
        queue = tmp_path / "queue"
        stats = run_worker(queue, poll_s=0.01, max_idle_s=0.05)
        assert stats.executed == 0 and "idle" in stats.stop_reason

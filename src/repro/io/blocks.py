"""Block-compressed columnar capture container (``.npb``).

The uncompressed aligned ``.npz`` (see :mod:`repro.io.columnar`) is the
memory-mapping format: bounded-memory scans, zero-copy loads, but
full-size on disk.  Fleet corpora are large *and* compressed, so this
module adds the complementary container: every column is cut into
per-block streams with a JSON block index, so archives stay small
on disk without giving up the RSS ceiling — :class:`BlockReader`
inflates one block at a time and plugs straight into
``BatchEntropyEngine.scan_stream``.

File layout (all integers little-endian)::

    magic            8 bytes   b"REPRONB1"
    column chunks    back-to-back zlib streams, one per (block, column)
    index            JSON (UTF-8): schema version, global intern
                     tables, per-column codec choices, per-block row
                     counts / time bounds / per-column entries
    trailer          <QQ8s: index offset, index size, magic again

Format v2 filters each column through a codec (:mod:`repro.io.codecs`)
*before* deflate — delta+zigzag for monotone timestamps and payload
offsets (whose deltas are the DLC sequence), dictionary encoding for
the few-distinct-values ID/source/bus columns, byte-transpose for
payload bytes — chosen automatically per column by trying every
candidate on the first block and keeping the smallest, with ``raw``
as the always-available escape hatch (so v2 never loses to v1) and a
per-block ``raw`` fallback when the winner cannot apply (e.g. a
ragged-DLC block under the payload transpose).  Each v2 column entry
records ``{off, csize, raw, dtype, codec, meta, crc}``; the CRC is of
the filtered (pre-deflate) bytes, so a bit-flipped block is always a
diagnosed ``TraceFormatError``, never silent garbage.  v1 files
(plain per-column zlib, list-shaped entries) remain readable forever:
the ``version`` gate dispatches, and :class:`BlockWriter` can still
emit v1 byte-identically (``version=1``) for compatibility tooling
and size comparisons.

The writer is append-only (stream parse → filter → compress → append,
nothing buffered beyond one block) and fsyncs the index before the
trailer so a crash mid-write leaves a detectably-truncated file; the
reader seeks the trailer first, so both directions are O(block)
memory.  Alignment rule: blocks are cut on frame boundaries only —
every block holds exactly ``block_frames`` rows (the last may be
short) with its payload offsets rebased to 0 — and window alignment
is applied at *read* time by merging each block with the carry of the
previous one, so any ``(window_us, chunk_windows)`` grid scans
bit-identically to the in-RAM path.  Unknown index versions are
refused up front (``version`` gate), like the npz schema gate.

Decoded block columns land in the process-wide
:mod:`repro.io.blockcache` LRU (keyed by path + stat fingerprint +
block + column), so warm fleet rescans and multi-detector passes over
the same capture stop re-inflating identical blocks.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.exceptions import TraceFormatError
from repro.io import codecs as npb_codecs
from repro.io.blockcache import DecodedBlockCache, default_cache, file_fingerprint
from repro.io.codecs import CODEC_NAMES, CodecUnsuitable
from repro.io.columnar import ColumnTrace
from repro.io.trace import Trace

__all__ = ["BlockReader", "BlockWriter", "write_blocks", "BLOCKS_SUFFIX"]

#: Canonical file suffix (``capture.npb`` — "numpy blocks").
BLOCKS_SUFFIX = ".npb"

_MAGIC = b"REPRONB1"
_TRAILER = struct.Struct("<QQ8s")
_FORMAT_NAME = "repro-blocks"
_VERSION = 2
_READABLE = (1, 2)

#: Default rows per compressed block.  256 K rows ≈ 8 MB of raw column
#: data — large enough that zlib sees real redundancy, small enough
#: that one inflated block is a rounding error under an RSS ceiling.
DEFAULT_BLOCK_FRAMES = 262_144

#: zlib level 6: the default speed/size trade-off.
DEFAULT_LEVEL = 6

#: Per-block column order (also the byte order inside the file).
_COLUMNS = (
    "timestamp_us",
    "can_id",
    "payload",
    "payload_offsets",
    "extended",
    "is_attack",
    "source_code",
    "bus_code",
)

#: Codec candidates per column, tried in order on the first block; the
#: smallest compressed result wins (``raw`` is always a candidate, so
#: a filter has to *pay* to be chosen).  Booleans stay raw: deflate
#: already collapses their runs, and no filter here can beat that.
_CANDIDATES: Dict[str, Tuple[str, ...]] = {
    "timestamp_us": ("delta", "shuffle", "raw"),
    "can_id": ("dict", "shuffle", "raw"),
    "payload": ("shuffle", "raw"),
    "payload_offsets": ("delta", "raw"),
    "extended": ("raw",),
    "is_attack": ("raw",),
    "source_code": ("dict", "raw"),
    "bus_code": ("dict", "raw"),
}


class BlockWriter:
    """Append-only writer for the ``.npb`` container.

    ``append`` takes time-ordered :class:`ColumnTrace` chunks of any
    size (the streaming readers' chunks, mapped npz slices, other
    readers' blocks); the writer re-cuts them into exact
    ``block_frames`` blocks, re-interns source/bus tags into global
    tables, filters + compresses each column and appends it.  Peak
    memory is O(block), never O(capture).  Use as a context manager —
    the index and trailer are written on a clean :meth:`close`.

    ``codecs`` forces specific codecs per column (skipping the
    first-block selection for those columns); ``version=1`` writes the
    legacy format byte-identically (all-raw, list-shaped entries).
    Batch converts appending several captures into one container
    should call :meth:`flush` between captures so the buffered column
    scratch drains and no block straddles a capture boundary.
    """

    def __init__(
        self,
        path: Union[str, Path],
        block_frames: int = DEFAULT_BLOCK_FRAMES,
        level: int = DEFAULT_LEVEL,
        *,
        codecs: Optional[Mapping[str, str]] = None,
        version: int = _VERSION,
    ) -> None:
        if block_frames <= 0:
            raise TraceFormatError(
                f"block_frames must be positive, got {block_frames}"
            )
        if not -1 <= int(level) <= 9:
            raise TraceFormatError(
                f"compression level must be in -1..9, got {level}"
            )
        if version not in _READABLE:
            raise TraceFormatError(
                f"cannot write block trace version {version} "
                f"(writable: {list(_READABLE)})"
            )
        self.path = Path(path)
        self.block_frames = int(block_frames)
        self.level = int(level)
        self.version = int(version)
        self._codec_overrides: Dict[str, str] = {}
        for name, codec in dict(codecs or {}).items():
            if name not in _COLUMNS:
                raise TraceFormatError(
                    f"unknown column {name!r} in codec overrides "
                    f"(columns: {', '.join(_COLUMNS)})"
                )
            if codec not in CODEC_NAMES:
                raise TraceFormatError(
                    f"unknown codec {codec!r} for column {name!r} "
                    f"(codecs: {', '.join(CODEC_NAMES)})"
                )
            self._codec_overrides[name] = codec
        if self._codec_overrides and self.version < 2:
            raise TraceFormatError(
                "codec overrides require format version 2"
            )
        #: Selected codec per column — fixed after the first block.
        self._codecs: Dict[str, str] = {}
        self._source_table: Dict[str, int] = {}
        self._bus_table: Dict[str, int] = {}
        self._parts: List[Dict[str, np.ndarray]] = []
        self._buffered = 0
        self._blocks: List[dict] = []
        self._n_frames = 0
        self._last_end: Optional[int] = None
        self._closed = False
        self._handle = open(self.path, "wb")
        self._handle.write(_MAGIC)

    # ------------------------------------------------------------------
    def _recode(
        self, codes: np.ndarray, names, table: Dict[str, int]
    ) -> np.ndarray:
        mapping = np.empty(len(names), dtype=np.int32)
        for i, name in enumerate(names):
            mapping[i] = table.setdefault(name, len(table))
        return mapping[codes]

    def append(self, trace) -> None:
        """Append a time-ordered chunk (``Trace`` or ``ColumnTrace``)."""
        if self._closed:
            raise TraceFormatError(f"{self.path}: writer already closed")
        ct = ColumnTrace.coerce(trace)
        if not len(ct):
            return
        if self._last_end is not None and ct.start_us < self._last_end:
            raise TraceFormatError(
                f"{self.path}: appended chunk starts at {ct.start_us} us, "
                f"before the previous chunk's end {self._last_end} us; "
                f"blocks must be time-ordered"
            )
        if np.any(np.diff(ct.timestamp_us) < 0):
            raise TraceFormatError(
                f"{self.path}: appended chunk is not time-ordered"
            )
        self._last_end = ct.end_us
        self._parts.append(
            {
                "timestamp_us": ct.timestamp_us,
                "can_id": ct.can_id,
                "payload": ct.payload_bytes(),
                "lengths": ct.dlc,
                "extended": ct.extended,
                "is_attack": ct.is_attack,
                "source_code": self._recode(
                    ct.source_code, ct.source_table, self._source_table
                ),
                "bus_code": self._recode(
                    ct.bus_code, ct.bus_table, self._bus_table
                ),
            }
        )
        self._buffered += len(ct)
        if self._buffered >= self.block_frames:
            self._drain(final=False)

    def flush(self) -> None:
        """Drain every buffered frame into blocks now (capture boundary).

        Batch converts call this between captures: the column scratch
        (``_parts``) empties completely, the tail becomes a (possibly
        short) block, and the next capture starts on a fresh block —
        no block ever straddles two captures.
        """
        if self._closed:
            raise TraceFormatError(f"{self.path}: writer already closed")
        self._drain(final=True)

    # ------------------------------------------------------------------
    def _drain(self, final: bool) -> None:
        """Flush buffered parts as exact ``block_frames`` blocks."""
        if not self._parts:
            return
        cat = {
            name: np.concatenate([p[name] for p in self._parts])
            for name in (
                "timestamp_us",
                "can_id",
                "payload",
                "lengths",
                "extended",
                "is_attack",
                "source_code",
                "bus_code",
            )
        }
        n = cat["timestamp_us"].size
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(cat["lengths"], out=offsets[1:] if n else None)
        lo = 0
        while n - lo >= self.block_frames or (final and lo < n):
            hi = min(lo + self.block_frames, n)
            self._write_block(cat, offsets, lo, hi)
            lo = hi
        if lo:
            rest = {
                name: cat[name][lo:]
                for name in cat
                if name != "payload"
            }
            rest["payload"] = cat["payload"][offsets[lo]:]
            self._parts = [rest] if n - lo else []
        else:
            self._parts = [dict(cat)]
        self._buffered = n - lo

    # ------------------------------------------------------------------
    def _select_codec(self, name: str, data: np.ndarray, width) -> str:
        """First-block selection: smallest deflated candidate wins."""
        forced = self._codec_overrides.get(name)
        if forced is not None:
            return forced
        best_codec = "raw"
        best_cost = None
        for cand in _CANDIDATES[name]:
            try:
                payload, meta = npb_codecs.encode(cand, data, width=width)
            except CodecUnsuitable:
                continue
            cost = len(zlib.compress(payload, self.level))
            if meta:
                cost += len(json.dumps(meta, separators=(",", ":")))
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_codec = cand
        return best_codec

    def _encode_column(
        self, name: str, data: np.ndarray, width
    ) -> Tuple[str, bytes, dict]:
        """Filter one column -> ``(codec used, payload, meta)``."""
        if self.version < 2:
            return "raw", data.tobytes(), {}
        chosen = self._codecs.get(name)
        if chosen is None:
            chosen = self._select_codec(name, data, width)
            self._codecs[name] = chosen
        if chosen == "raw":
            return "raw", data.tobytes(), {}
        try:
            payload, meta = npb_codecs.encode(chosen, data, width=width)
        except CodecUnsuitable:
            # Per-block escape hatch: the column-wide winner does not
            # apply here (e.g. a ragged-DLC block under the payload
            # transpose) — this block records ``raw``.
            return "raw", data.tobytes(), {}
        return chosen, payload, meta

    def _write_block(self, cat, offsets, lo: int, hi: int) -> None:
        ts = cat["timestamp_us"]
        arrays = {
            "timestamp_us": ts[lo:hi],
            "can_id": cat["can_id"][lo:hi],
            "payload": cat["payload"][offsets[lo]:offsets[hi]],
            "payload_offsets": offsets[lo : hi + 1] - offsets[lo],
            "extended": cat["extended"][lo:hi],
            "is_attack": cat["is_attack"][lo:hi],
            "source_code": cat["source_code"][lo:hi],
            "bus_code": cat["bus_code"][lo:hi],
        }
        lengths = cat["lengths"][lo:hi]
        width = None
        if lengths.size and int(lengths.min()) == int(lengths.max()):
            width = int(lengths[0])
        columns = {}
        for name in _COLUMNS:
            data = np.ascontiguousarray(arrays[name])
            codec, payload, meta = self._encode_column(
                name, data, width if name == "payload" else None
            )
            comp = zlib.compress(payload, self.level)
            if self.version < 2:
                columns[name] = [
                    self._handle.tell(),
                    len(comp),
                    len(payload),
                    data.dtype.str,
                ]
            else:
                columns[name] = {
                    "off": self._handle.tell(),
                    "csize": len(comp),
                    "raw": int(data.nbytes),
                    "dtype": data.dtype.str,
                    "codec": codec,
                    "meta": meta,
                    "crc": zlib.crc32(payload),
                }
            self._handle.write(comp)
        self._blocks.append(
            {
                "rows": hi - lo,
                "start_us": int(ts[lo]),
                "end_us": int(ts[hi - 1]),
                "columns": columns,
            }
        )
        self._n_frames += hi - lo

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush the final block, then write the index and trailer.

        The index is fsynced *before* the trailer goes out: a crash at
        any point leaves a file without a valid trailer — detectably
        truncated — never a valid trailer over a torn index.
        """
        if self._closed:
            return
        self._drain(final=True)
        index = {
            "format": _FORMAT_NAME,
            "version": self.version,
            "n_frames": self._n_frames,
            "block_frames": self.block_frames,
            "level": self.level,
            "source_table": list(self._source_table) or [""],
            "bus_table": list(self._bus_table) or [""],
            "blocks": self._blocks,
        }
        if self.version >= 2:
            index["codecs"] = {
                name: self._codecs[name]
                for name in _COLUMNS
                if name in self._codecs
            }
        payload = json.dumps(index, separators=(",", ":")).encode("utf-8")
        offset = self._handle.tell()
        self._handle.write(payload)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.write(_TRAILER.pack(offset, len(payload), _MAGIC))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._closed = True

    def abort(self) -> None:
        """Close the raw handle without finalising (file stays invalid)."""
        if not self._closed:
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "BlockWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_blocks(
    path: Union[str, Path],
    trace,
    block_frames: int = DEFAULT_BLOCK_FRAMES,
    level: int = DEFAULT_LEVEL,
    *,
    codecs: Optional[Mapping[str, str]] = None,
    version: int = _VERSION,
) -> None:
    """Write a capture (or an iterable of time-ordered chunks) as ``.npb``.

    Accepts a :class:`Trace`/:class:`ColumnTrace`, or any iterator of
    :class:`ColumnTrace` chunks (e.g. ``iter_candump_columns``) — the
    streaming form never materialises the capture.
    """
    with BlockWriter(
        path,
        block_frames=block_frames,
        level=level,
        codecs=codecs,
        version=version,
    ) as writer:
        if isinstance(trace, (Trace, ColumnTrace)):
            writer.append(trace)
        else:
            for chunk in trace:
                writer.append(chunk)


class BlockReader:
    """One-block-at-a-time reader for the ``.npb`` container.

    Exposes the same streaming surface as a :class:`ColumnTrace`
    (``len``, ``start_us``/``end_us``, ``iter_window_chunks``), so
    ``BatchEntropyEngine.scan_stream`` accepts it directly: peak memory
    is one inflated block merged with one window-grid carry, no matter
    how large the capture is.

    Decode path: compressed bytes are read into a reusable scratch
    buffer (``readinto`` + ``memoryview`` — no transient read
    allocations), inflated via ``zlib.decompressobj``, CRC-checked,
    and un-filtered with vectorised numpy; ``raw`` columns alias the
    inflated bytes outright (``np.frombuffer`` — zero copy).  Decoded
    columns are published read-only to the process-wide
    :func:`repro.io.blockcache.default_cache` keyed by
    ``(path, fingerprint, block, column)``, making repeat scans of the
    same capture — fleet watch cycles, drift + detect double passes —
    warm.  Pass ``cache=False`` to opt out, or a private
    :class:`DecodedBlockCache` to isolate.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        cache: Union[None, bool, DecodedBlockCache] = None,
    ) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "rb")
        try:
            index = self._read_index()
        except Exception:
            self._handle.close()
            raise
        self._index = index
        self.version = int(index["version"])
        self.n_frames = int(index["n_frames"])
        self.source_table = tuple(index["source_table"])
        self.bus_table = tuple(index["bus_table"])
        self.blocks = index["blocks"]
        self.codecs = dict(index.get("codecs") or {})
        if cache is None:
            self._cache: Optional[DecodedBlockCache] = default_cache()
        elif cache is False:
            self._cache = None
        elif cache is True:
            self._cache = default_cache()
        else:
            self._cache = cache
        self._fingerprint = file_fingerprint(os.fstat(self._handle.fileno()))
        self._cache_path = str(self.path.resolve())
        self._scratch = bytearray()

    def _read_index(self) -> dict:
        fh = self._handle
        fh.seek(0, 2)
        size = fh.tell()
        if size < len(_MAGIC) + _TRAILER.size:
            raise TraceFormatError(
                f"not a block-compressed trace: {self.path} (truncated)"
            )
        fh.seek(0)
        if fh.read(len(_MAGIC)) != _MAGIC:
            raise TraceFormatError(
                f"not a block-compressed trace: {self.path} (bad magic)"
            )
        fh.seek(size - _TRAILER.size)
        offset, length, magic = _TRAILER.unpack(fh.read(_TRAILER.size))
        if magic != _MAGIC or offset + length + _TRAILER.size != size:
            raise TraceFormatError(
                f"not a block-compressed trace: {self.path} (bad trailer)"
            )
        fh.seek(offset)
        try:
            index = json.loads(fh.read(length).decode("utf-8"))
        except ValueError as exc:
            raise TraceFormatError(
                f"not a block-compressed trace: {self.path} (bad index: {exc})"
            ) from exc
        if index.get("format") != _FORMAT_NAME:
            raise TraceFormatError(
                f"not a block-compressed trace: {self.path} "
                f"(format {index.get('format')!r})"
            )
        version = index.get("version")
        if version not in _READABLE:
            raise TraceFormatError(
                f"block trace schema version {version} not supported "
                f"(expected one of {list(_READABLE)})"
            )
        return index

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_frames

    @property
    def start_us(self) -> int:
        """Timestamp of the first record (0 when empty)."""
        return int(self.blocks[0]["start_us"]) if self.blocks else 0

    @property
    def end_us(self) -> int:
        """Timestamp of the last record (0 when empty)."""
        return int(self.blocks[-1]["end_us"]) if self.blocks else 0

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "BlockReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _column_entry(self, i: int, name: str):
        """Normalise one column's index entry across format versions.

        Returns ``(offset, csize, rawsize, dtype, codec, meta, crc)``
        where ``rawsize`` is the *decoded* column's byte length in
        both versions and ``crc`` (v2 only) covers the filtered
        pre-deflate bytes.
        """
        try:
            e = self.blocks[i]["columns"][name]
        except (KeyError, TypeError) as exc:
            raise TraceFormatError(
                f"{self.path}: block {i} index is missing column {name!r}"
            ) from exc
        if self.version >= 2:
            try:
                return (
                    int(e["off"]),
                    int(e["csize"]),
                    int(e["raw"]),
                    e["dtype"],
                    e.get("codec", "raw"),
                    e.get("meta") or {},
                    e.get("crc"),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise TraceFormatError(
                    f"{self.path}: block {i} column {name!r} has a "
                    f"malformed index entry: {exc}"
                ) from exc
        offset, csize, rawsize, dtype = e
        return (int(offset), int(csize), int(rawsize), dtype, "raw", {}, None)

    def _decode_entry(self, i: int, name: str, entry) -> np.ndarray:
        """Read + inflate + CRC-check + un-filter one column of block ``i``."""
        offset, csize, rawsize, dtype, codec, meta, crc = entry
        if len(self._scratch) < csize:
            self._scratch = bytearray(csize)
        view = memoryview(self._scratch)[:csize]
        self._handle.seek(offset)
        got = self._handle.readinto(view)
        if got != csize:
            raise TraceFormatError(
                f"{self.path}: block {i} column {name!r} truncated "
                f"({got} of {csize} compressed bytes)"
            )
        inflater = zlib.decompressobj()
        try:
            raw = inflater.decompress(view)
            raw += inflater.flush()
        except zlib.error as exc:
            raise TraceFormatError(
                f"{self.path}: block {i} column {name!r} is corrupt: {exc}"
            ) from exc
        if not inflater.eof or inflater.unused_data:
            raise TraceFormatError(
                f"{self.path}: block {i} column {name!r} compressed "
                f"stream is malformed"
            )
        if crc is not None and zlib.crc32(raw) != int(crc):
            raise TraceFormatError(
                f"{self.path}: block {i} column {name!r} failed its "
                f"checksum — the block is corrupt"
            )
        try:
            arr = npb_codecs.decode(codec, raw, np.dtype(dtype), meta)
        except KeyError as exc:
            raise TraceFormatError(
                f"{self.path}: block {i} column {name!r} has unknown "
                f"codec tag {codec!r}"
            ) from exc
        except (ValueError, TypeError) as exc:
            raise TraceFormatError(
                f"{self.path}: block {i} column {name!r} failed to "
                f"decode under codec {codec!r}: {exc}"
            ) from exc
        if int(arr.nbytes) != rawsize:
            raise TraceFormatError(
                f"{self.path}: block {i} column {name!r} decoded to "
                f"{arr.nbytes} bytes, index says {rawsize}"
            )
        return arr

    def _column_array(self, i: int, name: str, reg) -> np.ndarray:
        """One decoded column, served from the cache when warm."""
        key = None
        if self._cache is not None:
            key = (self._cache_path, self._fingerprint, i, name)
            arr = self._cache.get(key)
            if arr is not None:
                if reg is not None:
                    reg.counter("io.cache.hit").inc()
                return arr
            if reg is not None:
                reg.counter("io.cache.miss").inc()
        entry = self._column_entry(i, name)
        codec = entry[4]
        if reg is None:
            arr = self._decode_entry(i, name, entry)
        else:
            with reg.span(f"io.decode.{codec}", block=i, column=name):
                arr = self._decode_entry(i, name, entry)
        if key is not None:
            arr = self._cache.put(key, arr)
        return arr

    def _inflate_columns(self, i: int, reg) -> Dict[str, np.ndarray]:
        """Decode every column of block ``i`` (the IO cost)."""
        return {name: self._column_array(i, name, reg) for name in _COLUMNS}

    def read_block(self, i: int) -> ColumnTrace:
        """Inflate block ``i`` into an in-RAM :class:`ColumnTrace`."""
        entry = self.blocks[i]
        rows = int(entry["rows"])
        reg = obs.active()
        if reg is None:
            arrays = self._inflate_columns(i, None)
        else:
            with reg.span("io.decompress", block=i, rows=rows):
                arrays = self._inflate_columns(i, reg)
        expected = {name: rows for name in _COLUMNS}
        expected["payload_offsets"] = rows + 1
        expected["payload"] = arrays["payload"].size
        for name in _COLUMNS:
            if arrays[name].size != expected[name]:
                raise TraceFormatError(
                    f"{self.path}: block {i} column {name!r} has "
                    f"{arrays[name].size} entries, expected {expected[name]}"
                )
        return ColumnTrace(
            arrays["timestamp_us"],
            arrays["can_id"],
            payload=arrays["payload"],
            payload_offsets=arrays["payload_offsets"],
            extended=arrays["extended"],
            is_attack=arrays["is_attack"],
            source_code=arrays["source_code"],
            source_table=self.source_table,
            bus_code=arrays["bus_code"],
            bus_table=self.bus_table,
        )

    def iter_blocks(self) -> Iterator[ColumnTrace]:
        """Yield every block in order, one inflated at a time."""
        for i in range(len(self.blocks)):
            yield self.read_block(i)

    def to_columns(self) -> ColumnTrace:
        """Eagerly inflate the whole capture (the non-streaming load)."""
        parts = list(self.iter_blocks())
        if not parts:
            return ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))
        if len(parts) == 1:
            return parts[0]
        return ColumnTrace.merge(*parts)

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Machine-readable container summary (``repro-ids inspect``).

        Per column: the codec actually used per block (winner plus any
        ``raw`` fallbacks), logical vs compressed byte totals and the
        resulting ratio.
        """
        file_bytes = os.fstat(self._handle.fileno()).st_size
        columns: Dict[str, dict] = {}
        for name in _COLUMNS:
            raw_total = 0
            comp_total = 0
            used: Dict[str, int] = {}
            for i in range(len(self.blocks)):
                _, csize, rawsize, _, codec, _, _ = self._column_entry(i, name)
                raw_total += rawsize
                comp_total += csize
                used[codec] = used.get(codec, 0) + 1
            selected = self.codecs.get(name)
            if selected is None:
                if len(used) == 1:
                    selected = next(iter(used))
                else:
                    selected = "mixed" if used else "raw"
            columns[name] = {
                "codec": selected,
                "codecs_used": dict(sorted(used.items())),
                "raw_bytes": raw_total,
                "compressed_bytes": comp_total,
                "ratio": (raw_total / comp_total) if comp_total else 0.0,
            }
        raw_total = sum(c["raw_bytes"] for c in columns.values())
        comp_total = sum(c["compressed_bytes"] for c in columns.values())
        return {
            "path": str(self.path),
            "format": _FORMAT_NAME,
            "version": self.version,
            "n_frames": self.n_frames,
            "blocks": len(self.blocks),
            "block_frames": int(self._index.get("block_frames", 0)),
            "level": int(self._index.get("level", -2)),
            "file_bytes": int(file_bytes),
            "raw_bytes": raw_total,
            "compressed_bytes": comp_total,
            "ratio": (raw_total / comp_total) if comp_total else 0.0,
            "columns": columns,
        }

    def iter_window_chunks(
        self,
        window_us: int,
        chunk_windows: int,
        *,
        origin_us: Optional[int] = None,
    ) -> Iterator[ColumnTrace]:
        """Window-grid-aligned chunks, one block in memory at a time.

        Blocks are cut on frame boundaries, not window boundaries; the
        alignment rule is applied here: each block merges with the
        carry (the previous block's final, possibly-incomplete grid
        chunk) and every chunk except the running last one is yielded.
        The result is exactly the chunk stream
        ``self.to_columns().iter_window_chunks(...)`` would produce,
        with O(block + chunk) peak memory.
        """
        if window_us <= 0:
            raise ValueError(f"window must be positive, got {window_us}")
        if chunk_windows <= 0:
            raise ValueError(
                f"chunk_windows must be positive, got {chunk_windows}"
            )
        t0 = self.start_us if origin_us is None else int(origin_us)
        carry: Optional[ColumnTrace] = None
        for block in self.iter_blocks():
            if carry is not None and len(carry):
                block = ColumnTrace.merge(carry, block)
            carry = None
            chunks = list(
                block.iter_window_chunks(
                    window_us, chunk_windows, origin_us=t0
                )
            )
            if not chunks:
                continue
            carry = chunks.pop()
            for chunk in chunks:
                yield chunk
        if carry is not None and len(carry):
            yield carry

"""Benchmark E2 — regenerate the paper's Fig. 3.

Injection rate and detection rate for 15 identifiers spanning the
catalog, at a fixed injection frequency.  Asserted shape (the paper's
headline observations for this figure):

* the injection rate is high for numerically small identifiers and
  falls as the identifier value grows (dominant-0 arbitration);
* the detection rate falls along with it (fewer injected messages ->
  smaller entropy change).
"""

import numpy as np
import pytest

from repro.experiments import fig3


@pytest.fixture(scope="module")
def result(setup, seeds):
    return fig3.run(setup=setup, seeds=seeds)


def test_bench_fig3(benchmark, setup, seeds):
    """Time the Fig. 3 sweep and print both series."""
    outcome = benchmark.pedantic(
        lambda: fig3.run(setup=setup, seeds=seeds), rounds=1, iterations=1
    )
    text = outcome.render()
    print("\n" + text)
    print(f"trend slopes (Ir, Dr): {outcome.monotone_trend()}")
    benchmark.extra_info["figure"] = text
    from conftest import save_artifact
    save_artifact("fig3", text + f"\ntrend slopes (Ir, Dr): {outcome.monotone_trend()}")


class TestFig3Shape:
    def test_fifteen_identifiers(self, result):
        assert len(result.points) == 15

    def test_injection_rate_starts_high(self, result):
        assert result.points[0].injection_rate >= 0.95

    def test_injection_rate_declines(self, result):
        ir_slope, _ = result.monotone_trend()
        assert ir_slope < 0
        assert result.points[-1].injection_rate < result.points[0].injection_rate

    def test_detection_rate_declines_with_injection_rate(self, result):
        _, dr_slope = result.monotone_trend()
        assert dr_slope < 0

    def test_detection_correlates_with_injection(self, result):
        correlation = np.corrcoef(
            result.injection_rates, result.detection_rates
        )[0, 1]
        assert correlation > 0.3

    def test_injection_rates_valid(self, result):
        assert np.all(result.injection_rates > 0.0)
        assert np.all(result.injection_rates <= 1.0)

"""candump and CSV log formats (round-trips and error handling)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TraceFormatError
from repro.io.csvlog import read_csv, write_csv
from repro.io.log import format_record, parse_line, read_candump, write_candump
from repro.io.trace import Trace, TraceRecord

record_strategy = st.builds(
    TraceRecord,
    timestamp_us=st.integers(min_value=0, max_value=10**12),
    can_id=st.integers(min_value=0, max_value=0x7FF),
    data=st.binary(max_size=8),
    extended=st.just(False),
    source=st.sampled_from(["", "ECU_A", "mallory"]),
    is_attack=st.booleans(),
)


def make_trace(records):
    return Trace(sorted(records, key=lambda r: r.timestamp_us))


class TestCandumpLine:
    def test_format_matches_candump_shape(self):
        record = TraceRecord(1_500_000, 0x1A4, b"\xDE\xAD", source="ECU_X")
        line = format_record(record)
        assert line.startswith("(1.500000) can0 1A4#DEAD")
        assert "src=ECU_X" in line

    def test_parse_roundtrip(self):
        record = TraceRecord(42, 0x0F3, b"\x01\x02\x03", source="a", is_attack=True)
        assert parse_line(format_record(record)) == record

    def test_parse_without_comment(self):
        record = parse_line("(0.000100) can0 123#AB")
        assert record.can_id == 0x123
        assert record.source == ""
        assert not record.is_attack

    def test_parse_rejects_garbage(self):
        with pytest.raises(TraceFormatError):
            parse_line("not a candump line")

    def test_parse_rejects_odd_hex(self):
        with pytest.raises(TraceFormatError):
            parse_line("(0.000100) can0 123#ABC")

    @given(record_strategy)
    @settings(max_examples=100)
    def test_roundtrip_property(self, record):
        assert parse_line(format_record(record)) == record


class TestCandumpFile:
    def test_file_roundtrip(self, tmp_path):
        trace = make_trace(
            [
                TraceRecord(0, 0x100, b"\x01", source="A"),
                TraceRecord(10, 0x200, b"", source="B", is_attack=True),
            ]
        )
        path = tmp_path / "trace.log"
        write_candump(trace, path)
        assert read_candump(path) == trace

    def test_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "trace.log"
        path.write_text("# header\n\n(0.000001) can0 100#\n")
        assert len(read_candump(path)) == 1

    def test_error_reports_line_number(self, tmp_path):
        path = tmp_path / "trace.log"
        path.write_text("(0.000001) can0 100#\njunk\n")
        with pytest.raises(TraceFormatError, match="trace.log:2"):
            read_candump(path)


class TestCsv:
    def test_file_roundtrip(self, tmp_path):
        trace = make_trace(
            [
                TraceRecord(0, 0x100, b"\x01\x02", source="A"),
                TraceRecord(10, 0x7FF, b"", source="", is_attack=True),
            ]
        )
        path = tmp_path / "trace.csv"
        write_csv(trace, path)
        assert read_csv(path) == trace

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("a,b,c\n")
        with pytest.raises(TraceFormatError, match="header"):
            read_csv(path)

    def test_rejects_dlc_mismatch(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "time_us,can_id_hex,extended,dlc,data_hex,source,is_attack\n"
            "0,100,0,3,AB,src,0\n"
        )
        with pytest.raises(TraceFormatError, match="dlc"):
            read_csv(path)

    def test_rejects_short_row(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "time_us,can_id_hex,extended,dlc,data_hex,source,is_attack\n0,100\n"
        )
        with pytest.raises(TraceFormatError, match="fields"):
            read_csv(path)

    @given(st.lists(record_strategy, max_size=20))
    @settings(max_examples=30)
    def test_roundtrip_property(self, records):
        import tempfile
        from pathlib import Path

        trace = make_trace(records)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.csv"
            write_csv(trace, path)
            assert read_csv(path) == trace

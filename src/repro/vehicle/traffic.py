"""Vehicle simulation glue.

:class:`VehicleSimulation` wires a catalog, a driving scenario and
(optionally) attacker nodes onto a :class:`repro.can.Bus`, and provides
the capture helpers the experiments use: run for a duration, fetch the
trace, compute busload.

:func:`simulate_drive` is the one-call convenience used everywhere a
clean capture is needed (template construction, baseline fitting).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.can.bus import Bus, BusConfig
from repro.can.constants import SECOND_US
from repro.can.gateway import GatewayFilter
from repro.can.node import Node
from repro.io.columnar import ColumnTrace
from repro.io.trace import Trace
from repro.vehicle.driving import DrivingScenario, scenario_by_name
from repro.vehicle.ecu_profiles import assignments_for, build_ecus
from repro.vehicle.ids_catalog import VehicleCatalog, ford_fusion_catalog


class VehicleSimulation:
    """A vehicle's CAN segment, ready to run.

    Parameters
    ----------
    catalog:
        The identifier catalog; defaults to the synthetic Ford Fusion.
    scenario:
        Driving scenario (name or object); defaults to ``city``.
    seed:
        Seeds ECU offsets, jitter and event arrivals.
    bus_config:
        Optional bus configuration override.
    with_gateway:
        Attach a :class:`GatewayFilter` with the catalog whitelist and
        per-ECU assignments; reachable as :attr:`gateway`.
    """

    def __init__(
        self,
        catalog: Optional[VehicleCatalog] = None,
        scenario: Optional[object] = None,
        seed: int = 0,
        bus_config: Optional[BusConfig] = None,
        with_gateway: bool = False,
    ) -> None:
        self.catalog = catalog or ford_fusion_catalog(seed=0)
        if scenario is None:
            scenario = "city"
        if isinstance(scenario, str):
            scenario = scenario_by_name(scenario)
        self.scenario: DrivingScenario = scenario
        self.seed = seed
        self.bus = Bus(bus_config or BusConfig())
        self.ecus = build_ecus(self.catalog, self.scenario, seed=seed)
        for ecu in self.ecus:
            self.bus.attach(ecu)
        self.gateway: Optional[GatewayFilter] = None
        if with_gateway:
            self.gateway = GatewayFilter(
                known_ids=self.catalog.id_set(),
                assignments=assignments_for(self.catalog),
            )
            self.bus.attach_listener(self.gateway.on_frame)

    # ------------------------------------------------------------------
    def add_node(self, node: Node, tx_filter: Optional[Iterable[int]] = None) -> Node:
        """Attach an extra node (typically an attacker) to the bus."""
        return self.bus.attach(node, tx_filter=tx_filter)

    def run(self, duration_s: float) -> Trace:
        """Advance the simulation by ``duration_s`` seconds."""
        self.bus.run(int(duration_s * SECOND_US))
        return self.bus.trace

    @property
    def trace(self) -> Trace:
        """Everything captured so far."""
        return self.bus.trace

    def busload(self) -> float:
        """Fraction of elapsed time the bus carried bits."""
        return self.bus.stats.busload(self.bus.now_us)


def simulate_drive(
    duration_s: float,
    scenario: object = "city",
    seed: int = 0,
    catalog: Optional[VehicleCatalog] = None,
    bus_config: Optional[BusConfig] = None,
) -> Trace:
    """Record one clean drive and return its trace.

    Equivalent to the paper's Vehicle-Spy captures of normal driving.
    """
    sim = VehicleSimulation(
        catalog=catalog, scenario=scenario, seed=seed, bus_config=bus_config
    )
    return sim.run(duration_s)


def generate_drive_columns(
    duration_s: float,
    scenario: object = "city",
    seed: int = 0,
    catalog: Optional[VehicleCatalog] = None,
    with_payloads: bool = True,
) -> ColumnTrace:
    """Synthesize a clean drive directly into a :class:`ColumnTrace`.

    The columnar fast path for producing *large* captures (millions of
    frames): instead of running the event-driven bus simulation frame by
    frame, every catalog entry's release times are generated as one
    vectorised array — periodic entries as a jittered arithmetic
    progression, event entries as Poisson arrivals at the scenario's
    modulated rate — then merged with a single stable sort.

    The traffic is statistically equivalent to :func:`simulate_drive`
    (same identifiers, periods, scenario modulation) but *not*
    frame-accurate: timestamps are release times, without arbitration
    delays or error handling.  Use it for throughput/scale workloads;
    use the bus simulation when protocol-level timing matters.
    """
    catalog = catalog or ford_fusion_catalog(seed=0)
    if isinstance(scenario, str):
        scenario = scenario_by_name(scenario)
    rng = np.random.default_rng(seed)
    duration_us = int(duration_s * SECOND_US)
    stamp_parts: List[np.ndarray] = []
    id_parts: List[np.ndarray] = []
    dlc_parts: List[np.ndarray] = []
    code_parts: List[np.ndarray] = []
    intern: dict = {}
    for entry in catalog:
        if entry.is_periodic:
            period = int(entry.period_us)
            offset = int(rng.integers(0, period))
            n = max(0, (duration_us - 1 - offset) // period + 1)
            stamps = offset + np.arange(n, dtype=np.int64) * period
            if entry.jitter_frac > 0 and n:
                stamps = stamps + rng.normal(
                    0.0, entry.jitter_frac * period, n
                ).astype(np.int64)
                np.clip(stamps, 0, duration_us - 1, out=stamps)
                stamps.sort()
        else:
            rate_hz = scenario.rate_for(entry.tag, entry.base_rate_hz)
            n = int(rng.poisson(rate_hz * duration_s))
            stamps = np.sort(rng.integers(0, duration_us, n)).astype(np.int64)
        if not n:
            continue
        stamp_parts.append(stamps)
        id_parts.append(np.full(n, entry.can_id, dtype=np.int64))
        dlc_parts.append(
            np.full(n, entry.dlc if with_payloads else 0, dtype=np.int64)
        )
        code = intern.setdefault(entry.ecu, len(intern))
        code_parts.append(np.full(n, code, dtype=np.int32))
    if not stamp_parts:
        return ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))
    timestamp_us = np.concatenate(stamp_parts)
    order = np.argsort(timestamp_us, kind="stable")
    lengths = np.concatenate(dlc_parts)[order]
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return ColumnTrace(
        timestamp_us[order],
        np.concatenate(id_parts)[order],
        payload=np.zeros(int(offsets[-1]), dtype=np.uint8),
        payload_offsets=offsets,
        source_code=np.concatenate(code_parts)[order],
        source_table=tuple(intern),
        validate=False,
    )


def record_template_windows(
    n_windows: int,
    window_s: float,
    seed: int = 0,
    catalog: Optional[VehicleCatalog] = None,
    scenarios: Optional[Sequence[object]] = None,
) -> List[Trace]:
    """Record ``n_windows`` clean windows over diverse driving scenarios.

    This reproduces the paper's golden-template data collection ("35
    measurements from diverse driving behaviors"): each window comes from
    its own simulation seeded differently, cycling through the provided
    scenarios (standard set by default, randomized mixes interleaved).
    """
    import numpy as np

    from repro.vehicle.driving import STANDARD_SCENARIOS, random_scenario

    rng = np.random.default_rng(seed)
    windows: List[Trace] = []
    pool: List[object] = list(scenarios) if scenarios else list(STANDARD_SCENARIOS)
    for index in range(n_windows):
        if scenarios is None and index % 3 == 2:
            scenario = random_scenario(rng)
        else:
            scenario = pool[index % len(pool)]
        trace = simulate_drive(
            duration_s=window_s,
            scenario=scenario,
            seed=int(rng.integers(1 << 31)),
            catalog=catalog,
        )
        windows.append(trace)
    return windows

"""Trace container semantics."""

import numpy as np
import pytest

from repro.exceptions import TraceFormatError
from repro.io.trace import Trace, TraceRecord


def rec(t, can_id=0x100, attack=False, source="a"):
    return TraceRecord(timestamp_us=t, can_id=can_id, is_attack=attack, source=source)


class TestBuilding:
    def test_append_preserves_order(self):
        trace = Trace([rec(0), rec(5), rec(5), rec(9)])
        assert len(trace) == 4

    def test_rejects_out_of_order(self):
        trace = Trace([rec(10)])
        with pytest.raises(TraceFormatError):
            trace.append(rec(5))

    def test_merge_interleaves(self):
        a = Trace([rec(0), rec(10)])
        b = Trace([rec(5), rec(15)])
        merged = Trace.merge(a, b)
        assert [r.timestamp_us for r in merged] == [0, 5, 10, 15]

    def test_equality(self):
        assert Trace([rec(0)]) == Trace([rec(0)])
        assert Trace([rec(0)]) != Trace([rec(1)])


class TestProperties:
    def test_empty_trace(self):
        trace = Trace()
        assert len(trace) == 0
        assert trace.duration_us == 0
        assert trace.message_rate_hz() == 0.0

    def test_duration(self):
        trace = Trace([rec(100), rec(1100)])
        assert trace.duration_us == 1000

    def test_attack_count(self):
        trace = Trace([rec(0), rec(1, attack=True), rec(2, attack=True)])
        assert trace.attack_count == 2

    def test_message_rate(self):
        trace = Trace([rec(i * 1000) for i in range(101)])
        assert trace.message_rate_hz() == pytest.approx(1000.0)


class TestVectorised:
    def test_ids_array(self):
        trace = Trace([rec(0, 0x10), rec(1, 0x20)])
        assert trace.ids().tolist() == [0x10, 0x20]

    def test_attack_mask(self):
        trace = Trace([rec(0), rec(1, attack=True)])
        assert trace.attack_mask().tolist() == [False, True]

    def test_unique_ids_sorted(self):
        trace = Trace([rec(0, 0x30), rec(1, 0x10), rec(2, 0x30)])
        assert trace.unique_ids().tolist() == [0x10, 0x30]

    def test_unique_ids_empty(self):
        assert Trace().unique_ids().size == 0


class TestSlicing:
    def test_between_is_half_open(self):
        trace = Trace([rec(0), rec(10), rec(20)])
        window = trace.between(0, 20)
        assert [r.timestamp_us for r in window] == [0, 10]

    def test_filter(self):
        trace = Trace([rec(0, 0x10), rec(1, 0x20)])
        assert len(trace.filter(lambda r: r.can_id == 0x10)) == 1

    def test_attack_split(self):
        trace = Trace([rec(0), rec(1, attack=True)])
        assert len(trace.without_attacks()) == 1
        assert len(trace.only_attacks()) == 1

    def test_shifted(self):
        trace = Trace([rec(0), rec(10)]).shifted(100)
        assert trace.start_us == 100

    def test_getitem_slice_returns_trace(self):
        trace = Trace([rec(0), rec(1), rec(2)])
        assert isinstance(trace[1:], Trace)
        assert len(trace[1:]) == 2


class TestWindowing:
    def test_time_windows_tumble(self):
        trace = Trace([rec(i * 100) for i in range(20)])
        windows = list(trace.time_windows(1000))
        assert len(windows) == 2
        assert len(windows[0]) == 10

    def test_time_windows_cover_all_records(self):
        trace = Trace([rec(i * 133) for i in range(50)])
        windows = list(trace.time_windows(1000))
        assert sum(len(w) for w in windows) == 50

    def test_time_windows_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(Trace([rec(0)]).time_windows(0))

    def test_count_windows(self):
        trace = Trace([rec(i) for i in range(10)])
        windows = list(trace.count_windows(3))
        assert [len(w) for w in windows] == [3, 3, 3, 1]

    def test_id_histogram(self):
        trace = Trace([rec(0, 0x10), rec(1, 0x10), rec(2, 0x20)])
        assert trace.id_histogram() == {0x10: 2, 0x20: 1}

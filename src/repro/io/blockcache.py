"""Process-wide LRU cache of decoded ``.npb`` block columns.

Fleet watch cycles, drift rescans and multi-detector passes read the
same capture blocks over and over; inflating + un-filtering them anew
each pass is pure waste.  This cache keeps the *decoded* column
arrays — the expensive artefact — keyed by

    ``(path, fingerprint, block index, column name)``

where ``fingerprint`` is the file's ``(st_size, st_mtime_ns)`` stat
pair captured when the reader opened it.  A rewritten capture gets a
new fingerprint, so stale entries can never be served; they simply age
out of the LRU.  (The fleet ledger's content BLAKE2b would be exact
but costs a full file read per open — exactly the IO this cache
exists to avoid.)

Entries are read-only numpy arrays (the cache and every caller share
them, so nobody may write); accounting is by ``nbytes`` against a
byte budget, evicting least-recently-used whole entries.  A single
module-level instance (:func:`default_cache`) backs every
``BlockReader`` unless a reader opts out — that is what makes *warm*
rescans warm across readers within one process.  All operations take
an internal lock, so threaded executors can share it safely.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional, Tuple

import numpy as np

__all__ = ["DecodedBlockCache", "default_cache", "DEFAULT_CACHE_BYTES"]

#: Default budget: 64 MB ≈ a handful of decoded 256K-frame blocks —
#: enough to keep a smoke-sized capture fully warm, small enough to be
#: a rounding error under the out-of-core RSS ceilings.
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024


class DecodedBlockCache:
    """Byte-budgeted LRU of decoded column arrays."""

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Return the cached array (marking it most-recent) or ``None``."""
        with self._lock:
            arr = self._entries.get(key)
            if arr is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return arr

    def put(self, key: Hashable, arr: np.ndarray) -> np.ndarray:
        """Insert ``arr`` (made read-only); returns the stored array.

        Oversized arrays (bigger than the whole budget) are returned
        read-only but not retained.
        """
        if arr.flags.writeable:
            arr.flags.writeable = False
        size = int(arr.nbytes)
        if size > self.max_bytes:
            return arr
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= int(old.nbytes)
            self._entries[key] = arr
            self._bytes += size
            while self._bytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= int(evicted.nbytes)
        return arr

    # ------------------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> dict:
        """Counters + occupancy, JSON-safe (for obs / status surfaces)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes


_DEFAULT = DecodedBlockCache()


def default_cache() -> DecodedBlockCache:
    """The process-wide cache shared by every ``BlockReader``."""
    return _DEFAULT


def file_fingerprint(stat_result) -> Tuple[int, int]:
    """Cheap identity token for a capture file: ``(size, mtime_ns)``."""
    return (int(stat_result.st_size), int(stat_result.st_mtime_ns))

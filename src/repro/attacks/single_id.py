"""Scenario 2 — strong model, message injection with a single ID.

The attacker narrows down to one identifier, either to win the bus from
lower-priority traffic or to feed forged contents to the ECUs that
consume that identifier.  The paper notes the attacker picks from the
vehicle's legal ID set when it wants to influence a real function; the
experiments therefore inject catalog identifiers.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import AttackerNode
from repro.can.constants import MAX_BASE_ID
from repro.exceptions import BusConfigError


class SingleIDAttacker(AttackerNode):
    """Inject one fixed identifier at a fixed frequency.

    Parameters
    ----------
    can_id:
        The injected identifier.
    payload:
        Optional fixed payload (forged content); random bytes otherwise.
    """

    def __init__(
        self,
        can_id: int,
        name: str = "mallory_single",
        frequency_hz: float = 50.0,
        payload: Optional[bytes] = None,
        **kwargs,
    ) -> None:
        super().__init__(name, frequency_hz, **kwargs)
        if not 0 <= can_id <= MAX_BASE_ID:
            raise BusConfigError(f"identifier 0x{can_id:X} out of 11-bit range")
        if payload is not None and len(payload) > 8:
            raise BusConfigError("payload must be at most 8 bytes")
        self.can_id = can_id
        self.payload = payload

    def select_id(self) -> int:
        return self.can_id

    def build_payload(self) -> bytes:
        if self.payload is not None:
            return self.payload
        return super().build_payload()

"""Dual-bus vehicle and the gateway bridge."""

import pytest

from repro.can.frame import CANFrame
from repro.exceptions import BusConfigError, NodeStateError
from repro.vehicle import DualBusVehicle, ford_fusion_catalog
from repro.vehicle.multibus import HS_CLUSTERS, BridgeNode


class TestBridgeNode:
    def test_queue_order_by_release(self):
        bridge = BridgeNode(latency_us=100)
        bridge.enqueue(CANFrame(0x200), arrival_us=50)
        bridge.enqueue(CANFrame(0x100), arrival_us=10)
        assert bridge.next_release() == 110
        assert bridge.peek().can_id == 0x100

    def test_empty_bridge(self):
        bridge = BridgeNode()
        assert bridge.next_release() is None
        with pytest.raises(NodeStateError):
            bridge.peek()

    def test_win_pops(self):
        bridge = BridgeNode(latency_us=0)
        bridge.enqueue(CANFrame(0x100), 0)
        bridge.on_win(0)
        assert bridge.next_release() is None

    def test_overflow_drops(self):
        bridge = BridgeNode()
        for index in range(bridge.max_queue + 10):
            bridge.enqueue(CANFrame(0x100), index)
        assert bridge.queue_depth == bridge.max_queue
        assert bridge.dropped_overflow == 10

    def test_rejects_negative_latency(self):
        with pytest.raises(BusConfigError):
            BridgeNode(latency_us=-1)


class TestDualBusVehicle:
    @pytest.fixture(scope="class")
    def vehicle(self):
        vehicle = DualBusVehicle(seed=3)
        vehicle.run(4.0)
        return vehicle

    def test_cluster_split(self, vehicle):
        hs_clusters = {e.cluster for e in vehicle.hs_catalog}
        ms_clusters = {e.cluster for e in vehicle.ms_catalog}
        assert hs_clusters == set(HS_CLUSTERS)
        assert not (ms_clusters & set(HS_CLUSTERS))

    def test_bus_rates(self, vehicle):
        assert vehicle.hs_bus.bit_us == 2   # 500 kbit/s
        assert vehicle.ms_bus.bit_us == 8   # 125 kbit/s

    def test_both_buses_carry_traffic(self, vehicle):
        assert len(vehicle.hs_bus.trace) > 1000
        assert len(vehicle.ms_bus.trace) > 500

    def test_busloads_sane(self, vehicle):
        loads = vehicle.busloads()
        assert 0.02 < loads["high_speed"] < 0.9
        assert 0.02 < loads["middle_speed"] < 0.9

    def test_forwarded_frames_reach_ms_bus(self, vehicle):
        ms_ids = set(r.can_id for r in vehicle.ms_bus.trace)
        forwarded_seen = ms_ids & vehicle.forward_ids
        assert forwarded_seen  # bridge traffic arrived
        # Forwarded frames originate from the bridge node.
        bridge_frames = [
            r for r in vehicle.ms_bus.trace if r.source == "gateway_bridge"
        ]
        assert bridge_frames
        assert {r.can_id for r in bridge_frames} <= vehicle.forward_ids

    def test_forward_timing_after_source(self, vehicle):
        """A forwarded frame appears on MS only after it ran on HS."""
        target = sorted(vehicle.forward_ids)[0]
        hs_first = next(
            r.timestamp_us for r in vehicle.hs_bus.trace if r.can_id == target
        )
        ms_first = next(
            r.timestamp_us
            for r in vehicle.ms_bus.trace
            if r.can_id == target and r.source == "gateway_bridge"
        )
        assert ms_first > hs_first

    def test_rejects_foreign_forward_ids(self):
        catalog = ford_fusion_catalog(seed=0)
        ms_only = [e.can_id for e in catalog if e.cluster == "comfort"][:1]
        with pytest.raises(BusConfigError):
            DualBusVehicle(catalog=catalog, forward_ids=ms_only)

    def test_ids_on_both_buses_detectable(self, vehicle):
        """Both captures feed the IDS: build a template per bus and
        verify clean traffic stays quiet (the paper's claim that the
        method works for high-speed CAN too)."""
        from repro.core import IDSConfig, IDSPipeline, TemplateBuilder

        for bus_trace in (vehicle.hs_bus.trace, vehicle.ms_bus.trace):
            config = IDSConfig(template_windows=2, min_window_messages=30)
            builder = TemplateBuilder(config)
            added = builder.add_trace_windows(bus_trace)
            assert added >= 2
            template = builder.build()
            report = IDSPipeline(template, config).analyze(bus_trace)
            assert report.false_positive_rate <= 0.5

"""The windowed entropy detector (Section IV.B of the paper).

"In the detection procedure, we compare the binary entropy to the
template bit by bit.  If the bit change is above the threshold, we will
treat the CAN bus is under intrusion attack."

:class:`EntropyDetector` offers two driving modes:

* **batch** — :meth:`scan` splits a recorded :class:`~repro.io.trace.Trace`
  into tumbling windows and judges each;
* **streaming** — :meth:`feed` accepts records one by one (e.g. straight
  from a bus listener) and emits a :class:`WindowResult` whenever a
  window closes, which is how the real-time deployment the paper argues
  for ("react ... in a time period of as short as 1 s") would run.

Every window also records the number of ground-truth attack messages it
contained (carried by the simulator's trace records) so the evaluation
can compute the paper's detection rate; the verdict itself never uses
that field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.core.alerts import Alert, AlertSink
from repro.core.bitprob import BitCounter, check_id_range, window_bit_counts
from repro.core.config import IDSConfig
from repro.core.entropy import binary_entropy
from repro.core.template import GoldenTemplate
from repro.exceptions import DetectorError
from repro.io.trace import Trace, TraceRecord


@dataclass(frozen=True)
class WindowResult:
    """Verdict and measurements for one detection window."""

    index: int
    t_start_us: int
    t_end_us: int
    n_messages: int
    n_attack_messages: int
    probabilities: np.ndarray
    entropy: np.ndarray
    deviations: np.ndarray
    violated: np.ndarray
    judged: bool

    @property
    def alarm(self) -> bool:
        """True when the window was judged and at least one bit fired."""
        return self.judged and bool(np.any(self.violated))

    @property
    def violated_bit_numbers(self) -> tuple:
        """Violated bits in the paper's 1-based numbering (MSB = Bit 1)."""
        return tuple(int(i) + 1 for i in np.flatnonzero(self.violated))

    def to_alert(self) -> Alert:
        """Convert an alarming window into an :class:`Alert`."""
        if not self.alarm:
            raise DetectorError("window did not alarm; no alert to build")
        indices = np.flatnonzero(self.violated)
        return Alert(
            timestamp_us=self.t_end_us,
            window_index=self.index,
            violated_bits=tuple(int(i) + 1 for i in indices),
            deviations=tuple(float(self.deviations[i]) for i in indices),
            n_messages=self.n_messages,
        )

    # ------------------------------------------------------------------
    # Serialisation (the fleet ledger persists scan results)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation.

        Lossless: JSON floats round-trip ``float64`` exactly (shortest
        repr), so ``from_dict(to_dict())`` reproduces every array bit
        for bit — the fleet ledger relies on this to make cached scan
        results indistinguishable from fresh ones.
        """
        return {
            "index": int(self.index),
            "t_start_us": int(self.t_start_us),
            "t_end_us": int(self.t_end_us),
            "n_messages": int(self.n_messages),
            "n_attack_messages": int(self.n_attack_messages),
            "probabilities": [float(v) for v in self.probabilities],
            "entropy": [float(v) for v in self.entropy],
            "deviations": [float(v) for v in self.deviations],
            "violated": [bool(v) for v in self.violated],
            "judged": bool(self.judged),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WindowResult":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                index=int(payload["index"]),
                t_start_us=int(payload["t_start_us"]),
                t_end_us=int(payload["t_end_us"]),
                n_messages=int(payload["n_messages"]),
                n_attack_messages=int(payload["n_attack_messages"]),
                probabilities=np.asarray(payload["probabilities"], dtype=float),
                entropy=np.asarray(payload["entropy"], dtype=float),
                deviations=np.asarray(payload["deviations"], dtype=float),
                violated=np.asarray(payload["violated"], dtype=bool),
                judged=bool(payload["judged"]),
            )
        except KeyError as exc:
            raise DetectorError(f"window dict missing field {exc}") from exc


class EntropyDetector:
    """Tumbling-window, per-bit entropy detector."""

    def __init__(
        self,
        template: GoldenTemplate,
        config: Optional[IDSConfig] = None,
        sink: Optional[AlertSink] = None,
    ) -> None:
        self.config = config or IDSConfig()
        if template.n_bits != self.config.n_bits:
            raise DetectorError(
                f"template monitors {template.n_bits} bits, config expects "
                f"{self.config.n_bits}"
            )
        self.template = template
        self.sink = sink if sink is not None else AlertSink()
        self._counter = BitCounter(self.config.n_bits)
        self._window_index = 0
        self._window_start_us: Optional[int] = None
        self._attack_in_window = 0
        self._last_timestamp: Optional[int] = None

    # ------------------------------------------------------------------
    # Batch mode
    # ------------------------------------------------------------------
    def scan(self, trace: Trace) -> List[WindowResult]:
        """Judge every tumbling window of a recorded trace."""
        results: List[WindowResult] = []
        for record in trace:
            result = self.feed(record)
            if result is not None:
                results.append(result)
        final = self.flush()
        if final is not None:
            results.append(final)
        return results

    # ------------------------------------------------------------------
    # Streaming mode
    # ------------------------------------------------------------------
    def feed(self, record: TraceRecord) -> Optional[WindowResult]:
        """Account one record; return a result when a window closes.

        Records must arrive in non-decreasing timestamp order.  When a
        record lands past the current window's end, the window is closed
        and judged first, then the record opens the next window.  Long
        silent gaps close the intervening empty windows without verdicts.
        """
        if self._last_timestamp is not None and record.timestamp_us < self._last_timestamp:
            raise DetectorError(
                f"record at {record.timestamp_us}us arrived after "
                f"{self._last_timestamp}us; feed records in time order"
            )
        self._last_timestamp = record.timestamp_us

        closed: Optional[WindowResult] = None
        if self._window_start_us is None:
            self._window_start_us = record.timestamp_us
        elif record.timestamp_us >= self._window_start_us + self.config.window_us:
            closed = self._close_window()
            # Advance the window origin across any silent gap.
            start = self._window_start_us
            while record.timestamp_us >= start + self.config.window_us:
                start += self.config.window_us
            self._window_start_us = start

        self._counter.update(record.can_id)
        if record.is_attack:
            self._attack_in_window += 1
        return closed

    def feed_chunk(self, chunk) -> List[WindowResult]:
        """Account a contiguous batch of frames; return closed windows.

        ``chunk`` is a :class:`~repro.io.columnar.ColumnTrace` of frames
        in time order (e.g. a drained
        :class:`~repro.core.ring.FrameRing`).  Emits exactly the
        :class:`WindowResult` sequence per-record :meth:`feed` calls
        would have emitted — same windows, counts, probabilities,
        verdicts, alerts and indices — but counts whole window segments
        with vectorised column sums, so high-rate live buses pay
        interpreter overhead per *chunk*, not per frame.  Chunks and
        single-record feeds can be freely interleaved; the trailing
        partial window stays pending until more traffic or
        :meth:`flush`.
        """
        n = len(chunk)
        if n == 0:
            return []
        stamps = chunk.timestamp_us
        first_ts = int(stamps[0])
        if self._last_timestamp is not None and first_ts < self._last_timestamp:
            raise DetectorError(
                f"record at {first_ts}us arrived after "
                f"{self._last_timestamp}us; feed records in time order"
            )
        if n > 1 and np.any(np.diff(stamps) < 0):
            # Per-record feed() would raise on the first inversion;
            # silently windowing an unsorted chunk (possible via
            # validate=False construction) must not differ.
            raise DetectorError(
                "chunk timestamps are not non-decreasing; feed records "
                "in time order"
            )
        ids = chunk.can_id
        n_bits = self.config.n_bits
        check_id_range(ids, n_bits)
        self._last_timestamp = int(stamps[-1])
        if self._window_start_us is None:
            self._window_start_us = first_ts

        origin = self._window_start_us
        window_us = self.config.window_us
        grid, seg_starts, seg_ends = chunk.window_segments(
            window_us, origin_us=origin
        )
        counts = window_bit_counts(ids, seg_starts, n_bits)
        totals = seg_ends - seg_starts
        attacks = chunk.attack_counts(seg_starts)

        results: List[WindowResult] = []
        if not self._counter.is_empty() and int(grid[0]) > 0:
            # The chunk starts past the pending window: that window
            # closes with only its already-fed content, exactly as the
            # first out-of-window feed() call would have closed it.
            results.append(self._close_window())
        for j in range(grid.size - 1):
            # Everything before the last segment closes a window: merge
            # the segment into the pending counter state and judge it.
            self._counter.add_counts(counts[j], int(totals[j]))
            self._attack_in_window += int(attacks[j])
            self._window_start_us = origin + int(grid[j]) * window_us
            results.append(self._close_window())
        last = grid.size - 1
        self._counter.add_counts(counts[last], int(totals[last]))
        self._attack_in_window += int(attacks[last])
        self._window_start_us = origin + int(grid[last]) * window_us
        return results

    def flush(self) -> Optional[WindowResult]:
        """Close the trailing partial window (end of capture)."""
        if self._window_start_us is None or self._counter.is_empty():
            return None
        return self._close_window(final=True)

    def _close_window(self, final: bool = False) -> WindowResult:
        assert self._window_start_us is not None
        probabilities = self._counter.probabilities()
        entropy = np.asarray(binary_entropy(probabilities), dtype=float)
        judged = self._counter.total >= self.config.min_window_messages
        deviations = (
            self.template.deviations(entropy)
            if judged
            else np.zeros(self.config.n_bits)
        )
        violated = (
            np.abs(deviations) > self.template.thresholds
            if judged
            else np.zeros(self.config.n_bits, dtype=bool)
        )
        result = WindowResult(
            index=self._window_index,
            t_start_us=self._window_start_us,
            t_end_us=self._window_start_us + self.config.window_us,
            n_messages=self._counter.total,
            n_attack_messages=self._attack_in_window,
            probabilities=probabilities,
            entropy=entropy,
            deviations=deviations,
            violated=violated,
            judged=judged,
        )
        if result.alarm:
            self.sink.emit(result.to_alert())
        self._window_index += 1
        self._counter.reset()
        self._attack_in_window = 0
        if final:
            self._window_start_us = None
            self._last_timestamp = None
        return result

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all window state (template and config are kept)."""
        self._counter.reset()
        self._window_index = 0
        self._window_start_us = None
        self._attack_in_window = 0
        self._last_timestamp = None

"""Machine-readable benchmark records (``results/BENCH_*.json``).

The experiment modules have always rendered human-readable tables into
``results/*.txt``; those are good for reading and useless for diffing
the performance trajectory across PRs.  This module is the JSON twin:
every experiment result exposes ``bench_records()`` — a flat list of
measurements, one dict per metric::

    {"section": "throughput", "metric": "batch_mps",
     "value": 29779148.0, "unit": "msg/s",
     "params": {"n_frames": 1000000, ...}}

``section`` groups records the way the .txt sections do, ``metric`` is
a stable snake_case name, ``value`` is a plain number, ``unit`` names
its dimension, and ``params`` carries the experiment's sizing so a
regression diff can tell a real slowdown from a smaller run.

:func:`write_bench_json` merges records into ``results/BENCH_<name>.json``
with the same section-replace semantics the .txt writer uses: re-running
one experiment replaces that experiment's sections and leaves the rest
of the file intact.  Files are written atomically (temp + rename).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

__all__ = ["bench_record", "write_bench_json"]


def bench_record(
    section: str,
    metric: str,
    value: float,
    unit: str,
    params: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """One benchmark measurement in the BENCH_*.json schema."""
    return {
        "section": str(section),
        "metric": str(metric),
        "value": float(value),
        "unit": str(unit),
        "params": dict(params or {}),
    }


def write_bench_json(
    path: Union[str, Path], records: Sequence[Mapping[str, object]]
) -> Path:
    """Merge ``records`` into a BENCH json file, replacing their sections.

    Existing records whose ``section`` does not appear in ``records``
    are kept (other experiments own them); every section present in
    ``records`` is replaced wholesale.  Records are sorted by
    ``(section, metric)`` so the file diffs cleanly.  A corrupt or
    foreign file is replaced rather than crashing the experiment.
    """
    path = Path(path)
    incoming = [
        bench_record(
            r["section"], r["metric"], r["value"], r["unit"], r.get("params")
        )
        for r in records
    ]
    sections = {r["section"] for r in incoming}
    kept: List[Dict[str, object]] = []
    if path.exists():
        try:
            previous = json.loads(path.read_text(encoding="utf-8"))
            kept = [
                r
                for r in previous
                if isinstance(r, dict) and r.get("section") not in sections
            ]
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            kept = []
    merged = sorted(
        kept + incoming,
        key=lambda r: (str(r.get("section")), str(r.get("metric"))),
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path

"""Throughput experiment: streaming vs. batch detection at scale.

The paper's Section V.E argues the bit-slice method is light-weight; the
ROADMAP's production target demands the reproduction actually *runs*
light-weight on capture sizes comparable to the multi-million-frame
datasets used by CANet and the ROAD comparative study.  This experiment
measures both detection paths on one large synthetic capture from the
columnar drive generator:

* **streaming** — ``EntropyDetector.feed`` record by record, the
  embedded / live-bus deployment path (timed on a capped sample and
  reported as messages/second, since running the interpreter loop over
  the full capture would only repeat the same number);
* **batch** — ``BatchEntropyEngine.scan`` over the ``ColumnTrace``,
  the recorded-capture path.

Both paths produce bit-identical verdicts (the parity suite asserts
it); the experiment quantifies the cost gap between them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core import BatchEntropyEngine, EntropyDetector, IDSConfig
from repro.core.template import GoldenTemplate
from repro.io.columnar import ColumnTrace
from repro.vehicle.ids_catalog import VehicleCatalog
from repro.vehicle.traffic import generate_drive_columns

#: Default capture size: ten million frames, the multi-million-frame
#: regime of the comparative CAN-IDS studies.
DEFAULT_FRAMES = 10_000_000

#: Frames fed through the streaming path to estimate its rate.
DEFAULT_STREAMING_SAMPLE = 200_000


@dataclass(frozen=True)
class ThroughputResult:
    """Measured rates of the two detection paths on one capture."""

    n_frames: int
    capture_s: float
    n_windows: int
    streaming_frames: int
    streaming_mps: float
    batch_mps: float

    @property
    def speedup(self) -> float:
        """Batch messages/second over streaming messages/second."""
        return self.batch_mps / self.streaming_mps if self.streaming_mps else 0.0

    def render(self) -> str:
        """The experiment's artifact table."""
        lines = [
            "Throughput: streaming feed() vs batch ColumnTrace scan",
            f"capture: {self.n_frames} frames over {self.capture_s:.0f}s "
            f"simulated driving, {self.n_windows} detection windows",
            f"{'path':>12} {'frames':>12} {'msg/s':>14}",
            f"{'streaming':>12} {self.streaming_frames:>12} {self.streaming_mps:>14,.0f}",
            f"{'batch':>12} {self.n_frames:>12} {self.batch_mps:>14,.0f}",
            f"speedup: {self.speedup:.1f}x",
        ]
        return "\n".join(lines)


def run(
    template: GoldenTemplate,
    config: Optional[IDSConfig] = None,
    n_frames: int = DEFAULT_FRAMES,
    streaming_sample: int = DEFAULT_STREAMING_SAMPLE,
    seed: int = 29,
    scenario: str = "city",
    catalog: Optional[VehicleCatalog] = None,
    capture: Optional[ColumnTrace] = None,
) -> ThroughputResult:
    """Measure both detection paths on one large synthetic capture.

    The capture comes from :func:`generate_drive_columns`, sized by
    first estimating the scenario's message rate on a short probe drive.
    Pass ``capture`` to measure an existing columnar trace instead.
    """
    config = config or IDSConfig()
    if capture is None:
        probe = generate_drive_columns(
            10.0, scenario=scenario, seed=seed, catalog=catalog
        )
        rate = max(probe.message_rate_hz(), 1.0)
        duration_s = n_frames / rate * 1.02 + 1.0
        capture = generate_drive_columns(
            duration_s, scenario=scenario, seed=seed, catalog=catalog,
            with_payloads=False,
        ).slice(0, n_frames)
    n = len(capture)

    start = time.perf_counter()
    windows = BatchEntropyEngine(template, config).scan(capture)
    batch_elapsed = time.perf_counter() - start
    batch_mps = n / batch_elapsed if batch_elapsed else 0.0

    sample_n = min(streaming_sample, n)
    sample = capture.slice(0, sample_n).to_trace()  # conversion untimed
    detector = EntropyDetector(template, config)
    start = time.perf_counter()
    detector.scan(sample)
    streaming_elapsed = time.perf_counter() - start
    streaming_mps = sample_n / streaming_elapsed if streaming_elapsed else 0.0

    return ThroughputResult(
        n_frames=n,
        capture_s=capture.duration_us / 1e6,
        n_windows=len(windows),
        streaming_frames=sample_n,
        streaming_mps=streaming_mps,
        batch_mps=batch_mps,
    )

"""Trace containers and log file formats.

The paper captured its data with the Vehicle Spy 3 tool over OBD-II; this
package provides the equivalent plumbing for the simulator: an in-memory
:class:`~repro.io.trace.Trace` of timestamped frames with ground-truth
attack labels, a candump-compatible text format, and a Vehicle-Spy-like
CSV format.
"""

from repro.io.columnar import ColumnTrace
from repro.io.csvlog import read_csv, write_csv
from repro.io.log import read_candump, write_candump
from repro.io.trace import Trace, TraceRecord

__all__ = [
    "ColumnTrace",
    "Trace",
    "TraceRecord",
    "read_candump",
    "read_csv",
    "write_candump",
    "write_csv",
]

"""Per-column filter codecs for the v2 ``.npb`` container.

Round-trip property sweep — every codec must invert ``encode`` exactly
over every dtype/shape it claims to support, declare itself unsuitable
(never half-encode) where it does not, and diagnose malformed byte
streams with ``ValueError`` instead of decoding garbage.
"""

import numpy as np
import pytest

from repro.io.codecs import CODEC_NAMES, CodecUnsuitable, decode, encode


def roundtrip(codec, arr, *, width=None):
    payload, meta = encode(codec, arr, width=width)
    out = decode(codec, payload, arr.dtype, meta)
    assert out.dtype == arr.dtype
    np.testing.assert_array_equal(out, arr)
    return payload, meta


INT_DTYPES = ["<i8", "<i4", "<u4", "<u2", "<u1", "<i2"]


class TestRaw:
    @pytest.mark.parametrize("dtype", INT_DTYPES + ["<f8", "?"])
    @pytest.mark.parametrize("n", [0, 1, 7, 1000])
    def test_roundtrip(self, dtype, n):
        rng = np.random.default_rng(7)
        arr = rng.integers(0, 100, n).astype(dtype)
        roundtrip("raw", arr)


class TestDelta:
    @pytest.mark.parametrize("dtype", INT_DTYPES)
    @pytest.mark.parametrize("n", [1, 2, 777, 65_536])
    def test_monotone_roundtrip(self, dtype, n):
        """The timestamp shape: sorted, non-negative deltas (zz=0)."""
        rng = np.random.default_rng(n)
        hi = min(np.iinfo(dtype).max, 1 << 20)
        arr = np.sort(rng.integers(0, hi, n)).astype(dtype)
        payload, meta = roundtrip("delta", arr)
        assert meta["zz"] == 0

    @pytest.mark.parametrize("n", [2, 3, 1000])
    def test_non_monotone_roundtrip_uses_zigzag(self, n):
        rng = np.random.default_rng(n)
        arr = rng.integers(-(1 << 40), 1 << 40, n).astype(np.int64)
        if int(np.diff(arr).min()) >= 0:  # force a negative delta
            arr[-1] = arr[0] - 1
        payload, meta = roundtrip("delta", arr)
        assert meta["zz"] == 1

    def test_int64_extremes(self):
        """Zigzag is computed mod 2**64 — the full-range delta between
        int64 min and max must survive the trip."""
        lo, hi = np.iinfo(np.int64).min, np.iinfo(np.int64).max
        roundtrip("delta", np.array([hi, lo, hi, 0, lo], dtype=np.int64))

    def test_constant_column_is_one_byte_per_value(self):
        arr = np.full(10_000, 123_456_789, dtype=np.int64)
        payload, meta = roundtrip("delta", arr)
        assert meta["sdtype"] == "|u1"
        assert len(payload) == arr.size - 1

    def test_single_value(self):
        payload, meta = roundtrip("delta", np.array([42], dtype=np.int64))
        assert payload == b""
        assert meta["first"] == 42

    def test_empty_unsuitable(self):
        with pytest.raises(CodecUnsuitable):
            encode("delta", np.empty(0, dtype=np.int64))

    def test_float_unsuitable(self):
        with pytest.raises(CodecUnsuitable):
            encode("delta", np.linspace(0, 1, 8))

    def test_truncated_stream_raises(self):
        payload, meta = encode(
            "delta", np.arange(100, dtype=np.int64) * 1000
        )
        meta = dict(meta, sdtype="<u8")  # claims wider codes than present
        with pytest.raises(ValueError):
            decode("delta", payload[:3], np.dtype(np.int64), meta)


class TestDict:
    @pytest.mark.parametrize("dtype", INT_DTYPES)
    @pytest.mark.parametrize("n", [0, 1, 50, 9999])
    def test_roundtrip(self, dtype, n):
        rng = np.random.default_rng(n + 1)
        arr = rng.choice(
            np.array([1, 5, 9, 200, 27, 3], dtype=dtype), size=n
        )
        payload, meta = roundtrip("dict", arr)
        assert meta["nvals"] <= 6

    def test_many_values_picks_wider_codes(self):
        arr = np.arange(300, dtype=np.int64)
        payload, meta = roundtrip("dict", arr)
        assert meta["cdtype"] == "<u2"

    def test_oversized_dictionary_unsuitable(self):
        arr = np.arange(70_000, dtype=np.int64)
        with pytest.raises(CodecUnsuitable, match="65536"):
            encode("dict", arr)

    def test_out_of_range_code_raises(self):
        payload, meta = encode("dict", np.array([10, 20, 10], dtype=np.int64))
        # Point a code past the dictionary.
        bad = payload[:-1] + bytes([250])
        with pytest.raises(ValueError, match="out of range"):
            decode("dict", bad, np.dtype(np.int64), meta)

    def test_truncated_values_raise(self):
        payload, meta = encode("dict", np.array([10, 20, 10], dtype=np.int64))
        with pytest.raises(ValueError, match="stream holds"):
            decode("dict", payload[:4], np.dtype(np.int64), meta)


class TestShuffle:
    @pytest.mark.parametrize("dtype", ["<i8", "<u4", "<i2", "<u2"])
    @pytest.mark.parametrize("n", [0, 1, 63, 4096])
    def test_multibyte_roundtrip(self, dtype, n):
        rng = np.random.default_rng(n + 2)
        arr = rng.integers(0, 1 << 14, n).astype(dtype)
        payload, meta = roundtrip("shuffle", arr)
        assert meta["width"] == np.dtype(dtype).itemsize

    @pytest.mark.parametrize("width", [2, 8, 13])
    def test_payload_roundtrip(self, width):
        """uint8 payload bytes shuffled by the block's uniform DLC."""
        rng = np.random.default_rng(width)
        arr = rng.integers(0, 256, 100 * width).astype(np.uint8)
        roundtrip("shuffle", arr, width=width)

    def test_uint8_needs_width(self):
        with pytest.raises(CodecUnsuitable, match="width"):
            encode("shuffle", np.zeros(16, dtype=np.uint8))

    def test_ragged_payload_unsuitable(self):
        """A block whose byte count is not a multiple of the DLC —
        the ragged case the writer escapes to raw."""
        with pytest.raises(CodecUnsuitable, match="divisible"):
            encode("shuffle", np.zeros(17, dtype=np.uint8), width=8)

    def test_bad_width_raises_on_decode(self):
        payload, meta = encode("shuffle", np.arange(8, dtype=np.int64))
        with pytest.raises(ValueError, match="divisible"):
            decode("shuffle", payload[:-3], np.dtype(np.int64), meta)


class TestDispatch:
    def test_unknown_codec_is_keyerror(self):
        with pytest.raises(KeyError):
            encode("lz77", np.arange(4))
        with pytest.raises(KeyError):
            decode("lz77", b"", np.dtype(np.int64), {})

    def test_all_names_registered(self):
        arr = np.arange(1, 17, dtype=np.int64)
        for codec in CODEC_NAMES:
            roundtrip(codec, arr)

"""Chunked streaming: feed_chunk/FrameRing parity with per-record feed().

The contract: any interleaving of ``feed_chunk`` calls (including via a
drained :class:`FrameRing`) and single-record ``feed`` calls emits the
identical WindowResult sequence the pure per-record path emits — same
windows, counts, probabilities, verdicts, alerts, indices.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BitCounter,
    EntropyDetector,
    FrameRing,
    IDSConfig,
    TemplateBuilder,
)
from repro.core.alerts import AlertSink
from repro.exceptions import DetectorError
from repro.io import ColumnTrace, Trace, TraceRecord

#: Tight config so tiny traces exercise multiple windows and gaps.
CONFIG = IDSConfig(window_us=1_000, min_window_messages=4)


def tiny_template(config=CONFIG):
    builder = TemplateBuilder(config)
    builder.add_counter(BitCounter.from_ids([0x100, 0x2A5, 0x0F3, 0x555]))
    builder.add_counter(BitCounter.from_ids([0x101, 0x2A5, 0x100, 0x7FF]))
    builder.add_counter(BitCounter.from_ids([0x100, 0x1A5, 0x0F3, 0x3F0]))
    return builder.build()


TEMPLATE = tiny_template()


def gap_trace_strategy():
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5_000),  # gap to previous, us
            st.integers(min_value=0, max_value=0x7FF),
            st.booleans(),
        ),
        min_size=0,
        max_size=60,
    ).map(
        lambda steps: Trace(
            TraceRecord(t, can_id, is_attack=attack)
            for t, (_, can_id, attack) in zip(
                np.cumsum([g for g, _, _ in steps]).tolist(), steps
            )
        )
    )


def assert_windows_identical(stream, chunked):
    assert len(stream) == len(chunked)
    for s, c in zip(stream, chunked):
        assert s.index == c.index
        assert s.t_start_us == c.t_start_us and s.t_end_us == c.t_end_us
        assert s.n_messages == c.n_messages
        assert s.n_attack_messages == c.n_attack_messages
        assert np.array_equal(s.probabilities, c.probabilities)
        assert np.array_equal(s.entropy, c.entropy)
        assert np.array_equal(s.deviations, c.deviations)
        assert np.array_equal(s.violated, c.violated)
        assert s.judged == c.judged


def drain_with(detector, trace, plan):
    """Feed ``trace`` through detector per ``plan`` (chunk sizes; 0 means
    a single-record feed()), returning all emitted windows."""
    ct = trace.to_columns()
    out = []
    i = 0
    p = 0
    while i < len(ct):
        step = plan[p % len(plan)]
        p += 1
        if step == 0:
            result = detector.feed(ct[i])
            i += 1
            if result is not None:
                out.append(result)
        else:
            out.extend(detector.feed_chunk(ct.slice(i, i + step)))
            i += step
    final = detector.flush()
    if final is not None:
        out.append(final)
    return out


class TestFeedChunkParity:
    @settings(max_examples=120, deadline=None)
    @given(trace=gap_trace_strategy(), data=st.data())
    def test_random_interleavings_match_streaming(self, trace, data):
        plan = data.draw(
            st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=8)
        )
        reference = EntropyDetector(TEMPLATE, CONFIG).scan(trace)
        chunked = drain_with(EntropyDetector(TEMPLATE, CONFIG), trace, plan)
        assert_windows_identical(reference, chunked)

    def test_single_chunk_matches_scan(self):
        trace = Trace(
            TraceRecord(i * 137, (i * 7) % 0x800, is_attack=i % 5 == 0)
            for i in range(200)
        )
        detector = EntropyDetector(TEMPLATE, CONFIG)
        out = detector.feed_chunk(trace.to_columns())
        final = detector.flush()
        if final is not None:
            out.append(final)
        assert_windows_identical(EntropyDetector(TEMPLATE, CONFIG).scan(trace), out)

    def test_alerts_emitted_once_per_alarm(self):
        trace = Trace(TraceRecord(i * 10, 0x7FF) for i in range(300))
        sink_stream = AlertSink()
        EntropyDetector(TEMPLATE, CONFIG, sink_stream).scan(trace)
        sink_chunk = AlertSink()
        detector = EntropyDetector(TEMPLATE, CONFIG, sink_chunk)
        detector.feed_chunk(trace.to_columns())
        detector.flush()
        assert len(sink_chunk.alerts) == len(sink_stream.alerts)

    def test_empty_chunk_is_noop(self):
        detector = EntropyDetector(TEMPLATE, CONFIG)
        assert detector.feed_chunk(Trace().to_columns()) == []

    def test_out_of_order_chunk_rejected(self):
        detector = EntropyDetector(TEMPLATE, CONFIG)
        detector.feed(TraceRecord(5_000, 0x100))
        with pytest.raises(DetectorError, match="time order"):
            detector.feed_chunk(
                Trace([TraceRecord(1_000, 0x100)]).to_columns()
            )

    def test_unsorted_chunk_rejected(self):
        """An unsorted chunk (constructible via validate=False views)
        must raise like per-record feeding would, not emit garbage."""
        detector = EntropyDetector(TEMPLATE, CONFIG)
        chunk = ColumnTrace(
            np.asarray([5_000, 1_000], np.int64),
            np.asarray([0x100, 0x101], np.int64),
            validate=False,
        )
        with pytest.raises(DetectorError, match="non-decreasing"):
            detector.feed_chunk(chunk)

    def test_oversized_identifier_rejected(self):
        detector = EntropyDetector(TEMPLATE, CONFIG)
        chunk = ColumnTrace(
            np.asarray([0], np.int64), np.asarray([0x800], np.int64)
        )
        with pytest.raises(DetectorError, match="does not fit"):
            detector.feed_chunk(chunk)


class TestFrameRing:
    def test_ring_batched_stream_matches_scan(self):
        trace = Trace(
            TraceRecord(i * 97, (i * 13) % 0x800, is_attack=i % 7 == 0)
            for i in range(500)
        )
        ring = FrameRing(capacity=16)
        detector = EntropyDetector(TEMPLATE, CONFIG)
        out = []
        for record in trace:
            if ring.push_record(record):
                out.extend(detector.feed_chunk(ring.drain()))
        out.extend(detector.feed_chunk(ring.drain()))
        final = detector.flush()
        if final is not None:
            out.append(final)
        assert_windows_identical(EntropyDetector(TEMPLATE, CONFIG).scan(trace), out)

    def test_push_reports_full_and_overflow_raises(self):
        ring = FrameRing(capacity=2)
        assert ring.push(0, 1) is False
        assert ring.push(1, 2) is True
        assert ring.is_full
        with pytest.raises(DetectorError, match="full"):
            ring.push(2, 3)
        assert len(ring.drain()) == 2
        assert len(ring) == 0

    def test_out_of_order_push_rejected(self):
        ring = FrameRing(capacity=4)
        ring.push(100, 1)
        with pytest.raises(DetectorError, match="time order"):
            ring.push(50, 1)

    def test_bad_capacity_rejected(self):
        with pytest.raises(DetectorError):
            FrameRing(capacity=0)

    def test_drain_returns_columns_and_resets(self):
        ring = FrameRing(capacity=8)
        ring.push(10, 0x100, True)
        ring.push(20, 0x200, False)
        chunk = ring.drain()
        assert chunk.timestamp_us.tolist() == [10, 20]
        assert chunk.can_id.tolist() == [0x100, 0x200]
        assert chunk.is_attack.tolist() == [True, False]
        assert len(ring) == 0 and not ring.is_full

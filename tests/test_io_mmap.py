"""Memory-mapped ``.npz`` loading: lazy, read-only, field-exact.

``ColumnTrace.load_npz(mmap=True)`` must hand back the same trace the
eager loader builds — as zero-copy views over the file, aligned (so
whole-column kernels never silently copy a 100M-frame column into
RAM), immutable, and sliceable.  Compressed archives cannot be mapped
and must fall back to the eager load with a clear diagnostic.
"""

import warnings
import zipfile

import numpy as np
import pytest

from repro.io.columnar import ColumnTrace
from repro.vehicle import VehicleSimulation

from test_io_npz import assert_field_exact


@pytest.fixture()
def tagged_trace(catalog):
    """A payload-carrying, bus-tagged capture (worst-case schema)."""
    sim = VehicleSimulation(catalog=catalog, scenario="city", seed=21)
    return ColumnTrace.from_trace(sim.run(4.0)).with_bus("high_speed")


@pytest.fixture()
def npz_path(tagged_trace, tmp_path):
    path = tmp_path / "capture.npz"
    tagged_trace.save_npz(path)
    return path


def backing(array: np.ndarray) -> np.ndarray:
    """The array owning ``array``'s buffer (columns are views over the
    raw ``np.memmap``, whose own base is the OS-level ``mmap``)."""
    while (
        not isinstance(array, np.memmap)
        and isinstance(getattr(array, "base", None), np.ndarray)
    ):
        array = array.base
    return array


class TestMmapLoad:
    def test_field_exact_vs_eager(self, tagged_trace, npz_path):
        lazy = ColumnTrace.load_npz(npz_path, mmap=True)
        eager = ColumnTrace.load_npz(npz_path)
        assert_field_exact(tagged_trace, lazy)
        assert lazy == eager == tagged_trace

    def test_columns_are_lazy_readonly_aligned(self, npz_path):
        lazy = ColumnTrace.load_npz(npz_path, mmap=True)
        for name in (
            "timestamp_us", "can_id", "payload", "payload_offsets",
            "extended", "is_attack", "source_code", "bus_code",
        ):
            column = getattr(lazy, name)
            assert isinstance(backing(column), np.memmap), name
            assert not column.flags.writeable, name
            # Alignment is what keeps whole-column numpy ops zero-copy;
            # an unaligned map would silently buffer into anon memory.
            assert column.flags.aligned, name
            with pytest.raises(ValueError):
                column[:1] = 0

    def test_slices_and_bus_filter_work_on_mapped_trace(
        self, tagged_trace, npz_path
    ):
        lazy = ColumnTrace.load_npz(npz_path, mmap=True)
        n = len(lazy)
        assert lazy.slice(n // 4, n // 2) == tagged_trace.slice(n // 4, n // 2)
        assert lazy.for_bus("high_speed") == tagged_trace
        mid = int(lazy.timestamp_us[n // 2])
        assert lazy.between(mid, mid + 500_000) == tagged_trace.between(
            mid, mid + 500_000
        )

    def test_empty_trace_maps(self, tmp_path):
        empty = ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))
        path = tmp_path / "empty.npz"
        empty.save_npz(path)
        assert ColumnTrace.load_npz(path, mmap=True) == empty

    def test_compressed_falls_back_with_diagnostic(
        self, tagged_trace, tmp_path
    ):
        path = tmp_path / "compressed.npz"
        tagged_trace.save_npz(path, compressed=True)
        with pytest.warns(RuntimeWarning, match="falling back"):
            loaded = ColumnTrace.load_npz(path, mmap=True)
        assert loaded == tagged_trace
        assert not isinstance(backing(loaded.timestamp_us), np.memmap)

    def test_eager_load_emits_no_warning(self, npz_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ColumnTrace.load_npz(npz_path)

    def test_v1_schema_still_loads_both_ways(self, tagged_trace, tmp_path):
        """Archives written before the offsets-based v2 schema carried a
        ``dlc`` member; both loaders must keep reading them (the mmap
        loader rebuilds offsets eagerly — dlc needs a cumsum anyway)."""
        v2 = tmp_path / "v2.npz"
        tagged_trace.save_npz(v2)
        v1 = tmp_path / "v1.npz"
        with zipfile.ZipFile(v2) as src, zipfile.ZipFile(v1, "w") as dst:
            import io

            for name in src.namelist():
                if name == "payload_offsets.npy":
                    buffer = io.BytesIO()
                    np.save(buffer, tagged_trace.dlc.astype(np.int64))
                    dst.writestr("dlc.npy", buffer.getvalue())
                elif name == "version.npy":
                    buffer = io.BytesIO()
                    np.save(buffer, np.int64(1))
                    dst.writestr(name, buffer.getvalue())
                else:
                    dst.writestr(name, src.read(name))
        assert ColumnTrace.load_npz(v1) == tagged_trace
        lazy = ColumnTrace.load_npz(v1, mmap=True)
        assert lazy == tagged_trace
        assert not lazy.payload_offsets.flags.writeable

    def test_unaligned_foreign_npz_still_loads(self, tagged_trace, tmp_path):
        """A schema-compatible archive written by plain ``np.savez``
        (no alignment padding) must stay readable both ways — alignment
        is an optimisation of our writer, not a format requirement."""
        path = tmp_path / "foreign.npz"
        base = int(tagged_trace.payload_offsets[0])
        with open(path, "wb") as handle:
            np.savez(
                handle,
                version=np.int64(2),
                timestamp_us=tagged_trace.timestamp_us,
                can_id=tagged_trace.can_id,
                payload=tagged_trace.payload_bytes(),
                payload_offsets=tagged_trace.payload_offsets - np.int64(base),
                extended=tagged_trace.extended,
                is_attack=tagged_trace.is_attack,
                source_code=tagged_trace.source_code,
                source_table=np.asarray(tagged_trace.source_table, dtype=np.str_),
                bus_code=tagged_trace.bus_code,
                bus_table=np.asarray(tagged_trace.bus_table, dtype=np.str_),
            )
        assert ColumnTrace.load_npz(path) == tagged_trace
        assert ColumnTrace.load_npz(path, mmap=True) == tagged_trace

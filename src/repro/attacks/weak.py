"""Scenario 4 — weak model, injection with the assigned (fixed) IDs.

The weak attacker controls an ECU but cannot defeat the transmitter
filter outside it, so only the identifiers legitimately assigned to that
ECU pass to the bus.  Availability can still be attacked when those
identifiers dominate the concurrent traffic, and the attacker "can
manipulatively change the entropy by using multiple IDs he could legally
send" — which is why the paper finds inference accuracy slightly below
the single-ID case.

Attach this attacker together with a bus-level ``tx_filter`` equal to
the same assigned set to model the filter enforcing the restriction
(frames outside the set are counted in ``stats.filtered``).
"""

from __future__ import annotations

from typing import Sequence

from repro.attacks.base import AttackerNode
from repro.can.constants import MAX_BASE_ID
from repro.exceptions import BusConfigError


class WeakAttacker(AttackerNode):
    """Inject only from the compromised ECU's assigned identifier set.

    Parameters
    ----------
    assigned_ids:
        The identifiers the transmitter filter lets through.
    max_active:
        The attacker concentrates on its ``max_active`` most dominant
        assigned identifiers.  The paper's scenario 4 is titled
        "injection with fixed ID", with the caveat that the attacker
        "can manipulatively change the entropy by using multiple IDs he
        could legally send" — hence the default of 2: a fixed primary
        identifier plus a secondary used occasionally, which is exactly
        what makes the paper's weak-model inference accuracy land
        slightly below the single-ID case.
    prefer_dominant:
        Weight attempts toward the numerically smallest (most dominant)
        active identifiers, the rational strategy for winning the bus.
    """

    def __init__(
        self,
        assigned_ids: Sequence[int],
        name: str = "mallory_weak",
        frequency_hz: float = 50.0,
        max_active: int = 2,
        prefer_dominant: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(name, frequency_hz, **kwargs)
        ids = sorted(set(assigned_ids))
        if not ids:
            raise BusConfigError("WeakAttacker needs a non-empty assigned ID set")
        for can_id in ids:
            if not 0 <= can_id <= MAX_BASE_ID:
                raise BusConfigError(f"identifier 0x{can_id:X} out of 11-bit range")
        if max_active < 1:
            raise BusConfigError(f"max_active must be >= 1, got {max_active}")
        self.assigned_ids = ids[:max_active]
        self.prefer_dominant = prefer_dominant
        if prefer_dominant:
            # Steep weights: the fixed primary ID carries most attempts,
            # secondaries stay in play (that spread is what degrades
            # inference vs. the single-ID scenario).
            weights = [5.0 ** (-rank) for rank in range(len(self.assigned_ids))]
            total = sum(weights)
            self._weights = [w / total for w in weights]
        else:
            self._weights = [1.0 / len(ids)] * len(ids)

    def select_id(self) -> int:
        index = int(self.rng.choice(len(self.assigned_ids), p=self._weights))
        return self.assigned_ids[index]

"""Extension features beyond the paper's evaluation.

* extended (29-bit) identifier support — the paper notes the method "could
  also be applied to the extended format";
* automatic estimation of the number of injected identifiers
  (:meth:`InferenceEngine.estimate_k`), where the paper assumes k known;
* replay and masquerade attacks — harder cases probing the IDS's limits.
"""

import numpy as np
import pytest

from repro.attacks import MasqueradeAttacker, MultiIDAttacker, ReplayAttacker, SingleIDAttacker
from repro.can.bus import Bus
from repro.can.node import MessageSpec, PeriodicECU
from repro.core import IDSConfig, IDSPipeline, TemplateBuilder
from repro.core.inference import InferenceEngine
from repro.exceptions import InferenceError
from repro.io.trace import Trace, TraceRecord
from repro.vehicle import VehicleSimulation


class TestExtendedIdentifiers:
    """The 29-bit path, end to end on a small synthetic bus."""

    @pytest.fixture(scope="class")
    def ext_setup(self):
        config = IDSConfig(
            n_bits=29, window_us=1_000_000, min_window_messages=20,
            template_windows=2, alpha=3.0,
        )

        def run_bus(with_attack):
            bus = Bus()
            for index in range(4):
                bus.attach(
                    PeriodicECU(
                        f"e{index}",
                        [
                            MessageSpec(
                                (0x1234 << 10) + index * 0x111,
                                period_us=10_000,
                                offset_us=index * 733,
                                extended=True,
                            )
                        ],
                        seed=index,
                    )
                )
            if with_attack:
                # An extended-format injection: attacker node sending a
                # high-priority extended identifier.
                class ExtAttacker(SingleIDAttacker):
                    def peek(self):
                        from repro.can.frame import CANFrame

                        if self._pending is None:
                            can_id = self.select_id()
                            self.ids_used.add(can_id)
                            self._pending = CANFrame(
                                can_id, self.build_payload(), extended=True
                            )
                        return self._pending

                attacker = ExtAttacker(0x00000042, frequency_hz=80.0, seed=1)
                attacker.can_id = 0x00000042
                bus.attach(attacker)
            bus.run(4_000_000)
            return bus.trace

        builder = TemplateBuilder(config)
        clean = run_bus(with_attack=False)
        for window in clean.time_windows(config.window_us):
            if len(window) >= config.min_window_messages:
                builder.add_trace(window)
        template = builder.build()
        return config, template, run_bus

    def test_clean_extended_traffic_quiet(self, ext_setup):
        config, template, run_bus = ext_setup
        pipeline = IDSPipeline(template, config)
        report = pipeline.analyze(run_bus(with_attack=False))
        assert report.false_positive_rate == 0.0

    def test_extended_injection_detected(self, ext_setup):
        config, template, run_bus = ext_setup
        pipeline = IDSPipeline(template, config)
        report = pipeline.analyze(run_bus(with_attack=True))
        assert report.detection_rate > 0.9


class TestEstimateK:
    @pytest.fixture(scope="class")
    def engine(self):
        rng = np.random.default_rng(3)
        pool = sorted(int(i) for i in rng.choice(0x7FF, size=40, replace=False))
        config = IDSConfig(min_window_messages=10, template_windows=2)
        builder = TemplateBuilder(config)
        trace = Trace(
            TraceRecord(timestamp_us=i * 100, can_id=c)
            for i, c in enumerate(pool * 25)
        )
        builder.add_trace(trace)
        builder.add_trace(trace)
        return pool, InferenceEngine(pool, builder.build(), config)

    @staticmethod
    def _mixture(pool, injected, fraction):
        def bits(v):
            return np.array([(v >> (10 - i)) & 1 for i in range(11)], float)

        base = np.mean([bits(i) for i in pool], axis=0)
        inj = np.mean([bits(i) for i in injected], axis=0)
        return (1 - fraction) * base + fraction * inj

    @pytest.mark.parametrize("true_k", [1, 2, 3])
    def test_recovers_k_exactly_on_clean_mixtures(self, engine, true_k):
        pool, eng = engine
        injected = [pool[i] for i in (3, 17, 29)[:true_k]]
        p = self._mixture(pool, injected, 0.25)
        n = int(eng.template.mean_count / 0.75)
        assert eng.estimate_k(p, n) == true_k

    def test_validates_inputs(self, engine):
        _pool, eng = engine
        with pytest.raises(InferenceError):
            eng.estimate_k(np.zeros(5), 100)
        with pytest.raises(InferenceError):
            eng.estimate_k(eng.template.mean_p, 100, k_max=0)

    def test_pipeline_auto_mode(self, golden_template, ids_config, catalog):
        pipeline = IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)
        ids = [catalog.ids[50], catalog.ids[120]]
        sim = VehicleSimulation(catalog=catalog, scenario="city", seed=61)
        sim.add_node(
            MultiIDAttacker(ids, frequency_hz=50.0, start_s=2.0,
                            duration_s=8.0, seed=2)
        )
        report = pipeline.analyze(sim.run(12.0), infer_k="auto")
        assert report.inference is not None
        assert len(report.inference.best_set) == 2
        assert report.inference_hit_rate(ids) == 1.0


class TestReplayAttackDetection:
    def test_high_rate_replay_detected(self, golden_template, ids_config, catalog):
        """Replay preserves the ID mix, so entropy barely moves — but the
        traffic volume does; a 2x-rate replay is caught (partially)."""
        from repro.vehicle.traffic import simulate_drive

        recording = simulate_drive(3.0, scenario="city", seed=63, catalog=catalog)
        pipeline = IDSPipeline(golden_template, ids_config)
        sim = VehicleSimulation(catalog=catalog, scenario="city", seed=64)
        sim.add_node(
            ReplayAttacker(
                list(recording)[:2000], frequency_hz=400.0, start_s=2.0,
                duration_s=8.0, seed=3,
            )
        )
        report = pipeline.analyze(sim.run(12.0))
        # Detection is possible here through count-sensitive bits, but the
        # method is ID-based: assert the run completes and reports sane
        # metrics rather than a specific rate (replay is a documented
        # hard case).
        assert 0.0 <= report.detection_rate <= 1.0
        assert report.false_positive_rate <= 0.5


class TestMasqueradeDetection:
    def test_rate_mismatch_masquerade_detected(
        self, golden_template, ids_config, catalog
    ):
        """Masquerading at a much higher rate than the victim shifts the
        mix toward the impersonated identifier -> detectable."""
        pipeline = IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)
        sim = VehicleSimulation(catalog=catalog, scenario="city", seed=65)
        victim = sim.ecus[2]
        victim_id = sorted(victim.assigned_ids())[0]
        attacker = MasqueradeAttacker(
            victim_id, victim=victim, frequency_hz=100.0, start_s=2.0,
            duration_s=8.0, seed=4,
        )
        sim.add_node(attacker)
        report = pipeline.analyze(sim.run(12.0), infer_k=1)
        assert report.detection_rate > 0.5
        assert report.inference is not None

"""The message-interval IDS of Song, Kim & Kim (the paper's ref [11]).

Learns the nominal inter-arrival time of every identifier from clean
traffic; at runtime a window alarms when a learned identifier arrives
much faster than its nominal period (injection compresses intervals).

The two weaknesses the paper highlights are faithfully present:

* **linear storage** — two slots (nominal period, last-seen time) per
  identifier (:meth:`memory_slots`);
* **unseen-ID blindness** — an identifier absent from training has no
  learned period and is silently ignored (``handles_unseen_ids`` is
  False); the comparison experiment injects an unused identifier to
  demonstrate exactly this gap.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import DetectorError
from repro.io.trace import Trace

from repro.baselines.base import BaselineIDS


class IntervalIDS(BaselineIDS):
    """Per-identifier inter-arrival monitoring.

    Parameters
    ----------
    speedup_factor:
        An arrival counts as anomalous when its interval is below
        ``nominal / speedup_factor``.
    alarm_fraction:
        A window alarms when more than this fraction of its (learned-ID)
        arrivals were anomalous.
    """

    name = "interval"
    handles_unseen_ids = False
    localizes_ids = True  # the offending identifier is known by construction

    def __init__(
        self,
        speedup_factor: float = 2.0,
        alarm_fraction: float = 0.01,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if speedup_factor <= 1.0:
            raise DetectorError("speedup_factor must exceed 1")
        if not 0.0 < alarm_fraction < 1.0:
            raise DetectorError("alarm_fraction must be in (0, 1)")
        self.speedup_factor = speedup_factor
        self.alarm_fraction = alarm_fraction
        self.nominal_period_us: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def _fit(self, windows: Sequence[Trace]) -> None:
        # Intervals must be computed within each capture — the clean
        # windows are independent recordings whose clocks all start near
        # zero, so pooling raw timestamps across them would fabricate
        # absurdly small intervals.
        intervals_by_id: Dict[int, List[int]] = {}
        for window in windows:
            last_seen: Dict[int, int] = {}
            for record in window:
                previous = last_seen.get(record.can_id)
                last_seen[record.can_id] = record.timestamp_us
                if previous is not None and record.timestamp_us > previous:
                    intervals_by_id.setdefault(record.can_id, []).append(
                        record.timestamp_us - previous
                    )
        for can_id, intervals in intervals_by_id.items():
            if intervals:
                self.nominal_period_us[can_id] = float(np.median(intervals))
        if not self.nominal_period_us:
            raise DetectorError("interval IDS learned no identifier periods")

    def _judge(self, window: Trace) -> Tuple[float, bool]:
        last_seen: Dict[int, int] = {}
        checked = 0
        anomalous = 0
        for record in window:
            nominal = self.nominal_period_us.get(record.can_id)
            if nominal is None:
                continue  # unseen identifier: the documented blind spot
            previous = last_seen.get(record.can_id)
            last_seen[record.can_id] = record.timestamp_us
            if previous is None:
                continue
            checked += 1
            if (record.timestamp_us - previous) < nominal / self.speedup_factor:
                anomalous += 1
        if checked == 0:
            return 0.0, False
        fraction = anomalous / checked
        return fraction, fraction > self.alarm_fraction

    def _scores_columns(self, ct, grid, seg_starts, seg_ends, judged):
        # Group records by (window, identifier) keeping time order, diff
        # consecutive arrivals, and count the compressed intervals — the
        # exact per-window logic of _judge, vectorised.  The learned-id
        # lookup goes through searchsorted over the (few hundred) known
        # identifiers, not a dense table — extended 29-bit ids must not
        # force a 2^29-slot allocation.
        n_windows = seg_starts.size
        win_of_record = np.repeat(np.arange(n_windows), seg_ends - seg_starts)
        known_ids = np.fromiter(self.nominal_period_us, np.int64)
        periods = np.fromiter(self.nominal_period_us.values(), float)
        id_order = np.argsort(known_ids)
        known_ids, periods = known_ids[id_order], periods[id_order]
        pos = np.clip(
            np.searchsorted(known_ids, ct.can_id), 0, known_ids.size - 1
        )
        known = known_ids[pos] == ct.can_id
        win = win_of_record[known]
        ids = ct.can_id[known]
        stamps = ct.timestamp_us[known]
        record_period = periods[pos[known]]
        order = np.lexsort((np.arange(win.size), ids, win))
        win, ids, stamps = win[order], ids[order], stamps[order]
        same_group = (win[1:] == win[:-1]) & (ids[1:] == ids[:-1])
        pair_window = win[1:][same_group]
        intervals = (stamps[1:] - stamps[:-1])[same_group]
        limits = record_period[order][1:][same_group] / self.speedup_factor
        checked = np.bincount(pair_window, minlength=n_windows)
        anomalous = np.bincount(
            pair_window[intervals < limits], minlength=n_windows
        )
        scores = np.divide(
            anomalous,
            checked,
            out=np.zeros(n_windows, dtype=float),
            where=checked > 0,
        )
        return scores, scores > self.alarm_fraction

    # ------------------------------------------------------------------
    def memory_slots(self) -> int:
        """Nominal period plus last-seen timestamp per learned identifier."""
        return 2 * len(self.nominal_period_us)

    def flagged_ids(self, trace: Trace) -> List[int]:
        """Identifiers whose intervals violated the nominal period.

        The interval scheme localises by construction — but only within
        the learned set.
        """
        last_seen: Dict[int, int] = {}
        flagged: Dict[int, int] = {}
        for record in trace:
            nominal = self.nominal_period_us.get(record.can_id)
            if nominal is None:
                continue
            previous = last_seen.get(record.can_id)
            last_seen[record.can_id] = record.timestamp_us
            if previous is None:
                continue
            if (record.timestamp_us - previous) < nominal / self.speedup_factor:
                flagged[record.can_id] = flagged.get(record.can_id, 0) + 1
        return sorted(flagged, key=flagged.get, reverse=True)

"""Streaming/batch parity: the batch engine must be bit-for-bit
identical to EntropyDetector.scan on every trace, including silent-gap
and trailing-partial-window edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchEntropyEngine,
    BitCounter,
    EntropyDetector,
    IDSConfig,
    IDSPipeline,
    TemplateBuilder,
    batch_scan,
)
from repro.core.alerts import AlertSink
from repro.exceptions import DetectorError
from repro.io import ColumnTrace, Trace, TraceRecord

#: Tight config so tiny hypothesis traces exercise multiple windows.
CONFIG = IDSConfig(window_us=1_000, min_window_messages=4)


def tiny_template(config=CONFIG):
    builder = TemplateBuilder(config)
    builder.add_counter(BitCounter.from_ids([0x100, 0x2A5, 0x0F3, 0x555]))
    builder.add_counter(BitCounter.from_ids([0x101, 0x2A5, 0x100, 0x7FF]))
    builder.add_counter(BitCounter.from_ids([0x100, 0x1A5, 0x0F3, 0x3F0]))
    return builder.build()


TEMPLATE = tiny_template()


def gap_trace_strategy():
    """Random traces whose inter-arrival gaps span zero to many windows."""
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5_000),  # gap to previous, us
            st.integers(min_value=0, max_value=0x7FF),
            st.booleans(),
        ),
        min_size=0,
        max_size=60,
    ).map(
        lambda steps: Trace(
            TraceRecord(t, can_id, is_attack=attack)
            for t, (_, can_id, attack) in zip(
                np.cumsum([g for g, _, _ in steps]).tolist(), steps
            )
        )
    )


def assert_windows_identical(stream, batch):
    assert len(stream) == len(batch)
    for s, b in zip(stream, batch):
        assert s.index == b.index
        assert s.t_start_us == b.t_start_us
        assert s.t_end_us == b.t_end_us
        assert s.n_messages == b.n_messages
        assert s.n_attack_messages == b.n_attack_messages
        assert s.judged == b.judged
        assert s.alarm == b.alarm
        assert np.array_equal(s.probabilities, b.probabilities)
        assert np.array_equal(s.entropy, b.entropy)
        assert np.array_equal(s.deviations, b.deviations)
        assert np.array_equal(s.violated, b.violated)


class TestParity:
    @settings(max_examples=80, deadline=None)
    @given(gap_trace_strategy())
    def test_batch_equals_streaming_on_random_traces(self, trace):
        stream_sink, batch_sink = AlertSink(), AlertSink()
        stream = EntropyDetector(TEMPLATE, CONFIG, stream_sink).scan(trace)
        batch = BatchEntropyEngine(TEMPLATE, CONFIG, batch_sink).scan(trace)
        assert_windows_identical(stream, batch)
        assert list(stream_sink.alerts) == list(batch_sink.alerts)

    def test_trailing_partial_window(self):
        trace = Trace([TraceRecord(t, 0x100) for t in (0, 100, 900, 1000, 1100)])
        stream = EntropyDetector(TEMPLATE, CONFIG).scan(trace)
        batch = BatchEntropyEngine(TEMPLATE, CONFIG).scan(trace)
        assert_windows_identical(stream, batch)
        assert batch[-1].n_messages == 2  # the partial tail
        assert batch[-1].t_end_us == 2000  # grid end, past the last record

    def test_silent_gap_skips_windows_without_verdicts(self):
        trace = Trace(
            [TraceRecord(t, 0x100) for t in (0, 10, 20, 50_000, 50_010)]
        )
        stream = EntropyDetector(TEMPLATE, CONFIG).scan(trace)
        batch = BatchEntropyEngine(TEMPLATE, CONFIG).scan(trace)
        assert_windows_identical(stream, batch)
        assert len(batch) == 2  # 48 empty grid windows emitted nothing
        assert batch[1].t_start_us == 50_000

    def test_accepts_both_representations(self):
        trace = Trace([TraceRecord(t * 10, 0x123) for t in range(50)])
        engine = BatchEntropyEngine(TEMPLATE, CONFIG)
        assert_windows_identical(engine.scan(trace), engine.scan(trace.to_columns()))

    def test_batch_scan_convenience(self, golden_template, ids_config):
        trace = Trace([TraceRecord(t * 1000, 0x123) for t in range(100)])
        windows = batch_scan(trace, golden_template, ids_config)
        assert_windows_identical(
            windows, BatchEntropyEngine(golden_template, ids_config).scan(trace)
        )


class TestValidation:
    def test_empty_trace_yields_no_windows(self):
        assert BatchEntropyEngine(TEMPLATE, CONFIG).scan(Trace()) == []

    def test_rejects_template_width_mismatch(self):
        with pytest.raises(DetectorError):
            BatchEntropyEngine(TEMPLATE, IDSConfig(n_bits=29))

    def test_rejects_oversized_identifier(self):
        ct = ColumnTrace([0, 1], [0x100, 0x800])
        with pytest.raises(DetectorError):
            BatchEntropyEngine(TEMPLATE, CONFIG).scan(ct)


class TestPipelineDispatch:
    def test_analyze_columnar_equals_record(self, golden_template, ids_config, catalog):
        from repro.vehicle.traffic import simulate_drive

        trace = simulate_drive(5.0, scenario="city", seed=5, catalog=catalog)
        pipeline = IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)
        record_report = pipeline.analyze(trace)
        column_report = pipeline.analyze(trace.to_columns())
        assert_windows_identical(record_report.windows, column_report.windows)
        assert record_report.alerts == column_report.alerts
